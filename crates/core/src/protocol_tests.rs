//! Behavioural tests for the protocol engine: the Figure 5 trace, the
//! dependence cases of §4.3, group commit, SLA filtering, overflow, and
//! VID reset.

use hmtx_types::{Addr, CoreId, MachineConfig, SimError, Vid};

use crate::protocol::{AccessKind, AccessRequest, AccessResponse, MemorySystem, MisspecCause};

fn cfg() -> MachineConfig {
    MachineConfig::test_default()
}

fn eager_cfg() -> MachineConfig {
    let mut c = cfg();
    c.hmtx.lazy_commit = false;
    c
}

fn read(core: usize, addr: u64, vid: u16) -> AccessRequest {
    AccessRequest {
        core: CoreId(core),
        addr: Addr(addr),
        kind: AccessKind::Read,
        vid: Vid(vid),
        wrong_path: false,
    }
}

fn write(core: usize, addr: u64, vid: u16, value: u64) -> AccessRequest {
    AccessRequest {
        core: CoreId(core),
        addr: Addr(addr),
        kind: AccessKind::Write(value),
        vid: Vid(vid),
        wrong_path: false,
    }
}

fn wrong_path_read(core: usize, addr: u64, vid: u16) -> AccessRequest {
    AccessRequest {
        wrong_path: true,
        ..read(core, addr, vid)
    }
}

/// Drives an access that must succeed, returning (value, sla_required).
fn ok(mem: &mut MemorySystem, t: u64, req: AccessRequest) -> (u64, bool) {
    match mem.access(t, &req).expect("well-formed access") {
        AccessResponse::Done {
            value,
            sla_required,
            ..
        } => (value, sla_required),
        AccessResponse::Misspec { cause, .. } => panic!("unexpected misspeculation: {cause:?}"),
    }
}

/// Drives an access that must misspeculate, returning the cause.
fn misspec(mem: &mut MemorySystem, t: u64, req: AccessRequest) -> MisspecCause {
    match mem.access(t, &req).expect("well-formed access") {
        AccessResponse::Done { .. } => panic!("expected misspeculation"),
        AccessResponse::Misspec { cause, .. } => cause,
    }
}

fn states(mem: &MemorySystem, addr: u64) -> Vec<(String, String)> {
    let mut v = mem.line_states(Addr(addr));
    v.sort();
    v
}

// ---------------------------------------------------------------- Figure 5

/// Reproduces Figure 5 of the paper instruction by instruction: the exact
/// `(state, modVID, highVID)` evolution of address 0xa across two caches,
/// for two pipeline stages of the linked-list example.
#[test]
fn figure5_cache_state_trace() {
    let a = 0x40u64; // "0xa" in the figure; any line-aligned address works.
    let mut mem = MemorySystem::new(eager_cfg());

    // Initial condition of the figure: Cache 1 holds the line in E.
    ok(&mut mem, 0, read(0, a, 0));
    assert_eq!(states(&mem, a), vec![("L1[0]".into(), "E(0,0)".into())]);

    // (1) Thread 1: beginMTX(1); r1 = M[0xa].
    ok(&mut mem, 10, read(0, a, 1));
    assert_eq!(states(&mem, a), vec![("L1[0]".into(), "S-E(0,1)".into())]);

    // (2) Thread 1: M[0xa] = M[r1]  (speculative store, VID 1).
    ok(&mut mem, 20, write(0, a, 1, 111));
    assert_eq!(
        states(&mem, a),
        vec![
            ("L1[0]".into(), "S-M(1,1)".into()),
            ("L1[0]".into(), "S-O(0,1)".into())
        ]
    );

    // (3) Thread 1, next iteration: beginMTX(2); r1 = M[0xa]; M[0xa] = ...
    let (v, _) = ok(&mut mem, 30, read(0, a, 2));
    assert_eq!(v, 111, "VID 2 sees VID 1's uncommitted store");
    ok(&mut mem, 40, write(0, a, 2, 222));
    assert_eq!(
        states(&mem, a),
        vec![
            ("L1[0]".into(), "S-M(2,2)".into()),
            ("L1[0]".into(), "S-O(0,1)".into()),
            ("L1[0]".into(), "S-O(1,2)".into()),
        ]
    );

    // (4) Thread 2: beginMTX(1); r1 = M[0xa] — hits the S-O(1,2) version on
    // the bus; the response migrates in S-O(1,2) and Cache 1 keeps S-S(1,2).
    let (v, _) = ok(&mut mem, 50, read(1, a, 1));
    assert_eq!(v, 111, "VID 1 must see its own version, not VID 2's");
    assert_eq!(
        states(&mem, a),
        vec![
            ("L1[0]".into(), "S-M(2,2)".into()),
            ("L1[0]".into(), "S-O(0,1)".into()),
            ("L1[0]".into(), "S-S(1,2)".into()),
            ("L1[1]".into(), "S-O(1,2)".into()),
        ]
    );

    // (5) Thread 2: commitMTX(1).
    mem.commit(60, Vid(1)).unwrap();
    assert_eq!(
        states(&mem, a),
        vec![
            ("L1[0]".into(), "S-M(2,2)".into()),
            ("L1[0]".into(), "S-S(0,2)".into()),
            ("L1[1]".into(), "S-O(0,2)".into()),
        ]
    );

    // Committing VID 2 finishes the story: only the committed M line remains.
    mem.commit(70, Vid(2)).unwrap();
    assert_eq!(states(&mem, a), vec![("L1[0]".into(), "M(0,0)".into())]);
    assert_eq!(mem.peek_word(Addr(a), Vid(0)), 222);
}

// ----------------------------------------------------- §4.3 dependence cases

#[test]
fn flow_dependence_store_first_forwards_value() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 7));
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 2));
    assert_eq!(v, 7, "uncommitted value forwarding");
}

#[test]
fn flow_dependence_load_first_detects_violation() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, read(1, 0x100, 2)); // l_y first (y = 2)
    let cause = misspec(&mut mem, 10, write(0, 0x100, 1, 7)); // s_x (x = 1)
    match cause {
        MisspecCause::StoreBelowHighVid {
            store_vid,
            high_vid,
            ..
        } => {
            assert_eq!(store_vid, Vid(1));
            assert_eq!(high_vid, Vid(2));
        }
        other => panic!("unexpected cause {other:?}"),
    }
}

#[test]
fn anti_dependence_load_first_is_preserved() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x100), 5);
    let (v, _) = ok(&mut mem, 0, read(0, 0x100, 1)); // l_x
    assert_eq!(v, 5);
    ok(&mut mem, 10, write(1, 0x100, 2, 9)); // s_y, y > x: no violation
    let (v, _) = ok(&mut mem, 20, read(0, 0x100, 1));
    assert_eq!(v, 5, "VID 1 must keep seeing the pre-VID-2 value");
    let (v, _) = ok(&mut mem, 30, read(1, 0x100, 2));
    assert_eq!(v, 9);
}

#[test]
fn anti_dependence_store_first_avoids_false_misspeculation() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x100), 5);
    ok(&mut mem, 0, write(1, 0x100, 2, 9)); // s_y first
    let (v, _) = ok(&mut mem, 10, read(0, 0x100, 1)); // l_x: hits the S-O backup
    assert_eq!(v, 5, "earlier VID reads the unmodified copy");
}

#[test]
fn output_dependence_in_order_keeps_latest() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 1));
    ok(&mut mem, 10, write(1, 0x100, 2, 2));
    mem.commit(20, Vid(1)).unwrap();
    mem.commit(30, Vid(2)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 2);
}

#[test]
fn output_dependence_out_of_order_detects_violation() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(1, 0x100, 2, 2)); // s_y first
    let cause = misspec(&mut mem, 10, write(0, 0x100, 1, 1)); // s_x
                                                              // The store lands either on the S-M(2,2) version (VID below highVID) or
                                                              // on the S-O(0,2) backup (superseded); both are the §4.3 conservative
                                                              // output-dependence trigger.
    assert!(matches!(
        cause,
        MisspecCause::StoreBelowHighVid { .. } | MisspecCause::StoreToSupersededVersion { .. }
    ));
}

// ------------------------------------------------ group commit & abort

#[test]
fn group_commit_spans_multiple_caches() {
    // Two threads of the same transaction write different lines from
    // different cores; one commit makes both visible.
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 10));
    ok(&mut mem, 10, write(1, 0x180, 1, 20));
    mem.commit(20, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 10);
    assert_eq!(mem.peek_word(Addr(0x180), Vid(0)), 20);
    mem.drain_committed().expect("no speculative leftovers");
    assert_eq!(mem.memory().read_word(Addr(0x100)), 10);
    assert_eq!(mem.memory().read_word(Addr(0x180)), 20);
}

#[test]
fn abort_discards_speculative_state_and_keeps_committed() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x100), 5);
    ok(&mut mem, 0, write(0, 0x100, 1, 10));
    mem.commit(10, Vid(1)).unwrap();
    ok(&mut mem, 20, write(1, 0x100, 2, 99));
    ok(&mut mem, 30, write(0, 0x180, 3, 77));
    mem.abort_all(40);
    assert_eq!(
        mem.peek_word(Addr(0x100), Vid(0)),
        10,
        "committed VID 1 survives"
    );
    assert_eq!(
        mem.peek_word(Addr(0x180), Vid(0)),
        0,
        "uncommitted VID 3 flushed"
    );
    mem.drain_committed().expect("caches clean after abort");
    assert_eq!(mem.memory().read_word(Addr(0x100)), 10);
    assert_eq!(mem.memory().read_word(Addr(0x180)), 0);
}

#[test]
fn commits_must_be_consecutive() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 1));
    ok(&mut mem, 0, write(0, 0x140, 2, 2));
    let err = mem.commit(10, Vid(2)).unwrap_err();
    assert_eq!(
        err,
        SimError::NonConsecutiveCommit {
            expected: 1,
            got: 2
        }
    );
    mem.commit(20, Vid(1)).unwrap();
    mem.commit(30, Vid(2)).unwrap();
}

#[test]
fn lazy_and_eager_commit_reach_the_same_final_state() {
    let run = |lazy: bool| {
        let mut c = cfg();
        c.hmtx.lazy_commit = lazy;
        let mut mem = MemorySystem::new(c);
        for i in 0..8u64 {
            let vid = (i + 1) as u16;
            ok(
                &mut mem,
                i * 100,
                write((i % 4) as usize, 0x100 + 0x40 * i, vid, i + 1),
            );
            ok(
                &mut mem,
                i * 100 + 10,
                read(((i + 1) % 4) as usize, 0x100 + 0x40 * i, vid),
            );
            mem.commit(i * 100 + 20, Vid(vid)).unwrap();
        }
        mem.drain_committed().unwrap();
        mem.memory().fingerprint()
    };
    assert_eq!(run(true), run(false));
}

// --------------------------------------------------------- SLA (§5.1)

#[test]
fn sla_marks_only_unlogged_lines() {
    let mut mem = MemorySystem::new(cfg());
    let (_, sla1) = ok(&mut mem, 0, read(0, 0x100, 1));
    assert!(sla1, "first speculative load of a line needs an SLA");
    let (_, sla2) = ok(&mut mem, 10, read(0, 0x100, 1));
    assert!(!sla2, "line already logged this VID");
    ok(&mut mem, 20, write(0, 0x140, 1, 5));
    let (_, sla3) = ok(&mut mem, 30, read(0, 0x140, 1));
    assert!(!sla3, "a store with the same VID already logged the line");
    assert_eq!(mem.stats().slas_sent, 1);
    assert_eq!(mem.stats().slas_skipped, 2);
}

#[test]
fn wrong_path_load_does_not_mark_and_store_avoids_abort() {
    let mut mem = MemorySystem::new(cfg());
    // A squashed load from VID 2 touches the line...
    ok(&mut mem, 0, wrong_path_read(1, 0x100, 2));
    // ...then a store from VID 1 writes it. Without SLAs this would be a
    // false RAW violation; with SLAs it proceeds.
    ok(&mut mem, 10, write(0, 0x100, 1, 7));
    assert_eq!(mem.stats().sla_aborts_avoided, 1);
    mem.commit(20, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 7);
}

#[test]
fn without_sla_wrong_path_load_causes_false_misspeculation() {
    let mut c = cfg();
    c.hmtx.sla_enabled = false;
    let mut mem = MemorySystem::new(c);
    ok(&mut mem, 0, wrong_path_read(1, 0x100, 2));
    let cause = misspec(&mut mem, 10, write(0, 0x100, 1, 7));
    assert!(matches!(cause, MisspecCause::StoreBelowHighVid { .. }));
    assert_eq!(mem.stats().sla_aborts_avoided, 0);
}

#[test]
fn sla_verification_detects_value_mismatch() {
    let mut mem = MemorySystem::new(cfg());
    let (v, sla) = ok(&mut mem, 0, read(0, 0x100, 1));
    assert!(sla);
    assert!(mem.verify_sla(Addr(0x100), Vid(1), v).is_none());
    assert!(matches!(
        mem.verify_sla(Addr(0x100), Vid(1), v + 1),
        Some(MisspecCause::SlaValueMismatch { .. })
    ));
}

// ------------------------------------------- non-speculative interactions

#[test]
fn nonspec_reads_see_latest_committed_version() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x100), 5);
    ok(&mut mem, 0, write(0, 0x100, 1, 10));
    // VID 0 on another core still sees the committed 5.
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 0));
    assert_eq!(v, 5);
    mem.commit(20, Vid(1)).unwrap();
    let (v, _) = ok(&mut mem, 30, read(1, 0x100, 0));
    assert_eq!(v, 10);
}

#[test]
fn nonspec_write_to_speculative_line_conflicts() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, read(0, 0x100, 2));
    let cause = misspec(&mut mem, 10, write(1, 0x100, 0, 1));
    assert!(matches!(
        cause,
        MisspecCause::StoreBelowHighVid { .. } | MisspecCause::NonSpecWriteConflict { .. }
    ));
}

#[test]
fn nonspec_writes_to_disjoint_lines_are_plain_moesi() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x200, 0, 1));
    let (v, _) = ok(&mut mem, 10, read(1, 0x200, 0));
    assert_eq!(v, 1);
    ok(&mut mem, 20, write(1, 0x200, 0, 2));
    let (v, _) = ok(&mut mem, 30, read(0, 0x200, 0));
    assert_eq!(v, 2);
    assert_eq!(mem.stats().aborts, 0);
}

// ---------------------------------------------------- same-VID MTX sharing

#[test]
fn same_vid_threads_share_uncommitted_state_across_cores() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 1));
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 1));
    assert_eq!(v, 1);
    // The same transaction writes again from the second core (in place).
    ok(&mut mem, 20, write(1, 0x100, 1, 2));
    let (v, _) = ok(&mut mem, 30, read(0, 0x100, 1));
    assert_eq!(v, 2, "second write visible to the first thread");
    mem.commit(40, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 2);
}

#[test]
fn later_vid_keeps_older_version_after_superseding_write() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 1));
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 2));
    assert_eq!(v, 1);
    ok(&mut mem, 20, write(1, 0x100, 2, 2));
    // VID 1 re-reads its own version (now superseded): still 1.
    let (v, _) = ok(&mut mem, 30, read(0, 0x100, 1));
    assert_eq!(v, 1);
    // VID 2 and above see 2.
    let (v, _) = ok(&mut mem, 40, read(2, 0x100, 3));
    assert_eq!(v, 2);
}

// ----------------------------------------------------------- overflow §5.4

fn tiny_cfg() -> MachineConfig {
    let mut c = cfg();
    c.l1 = hmtx_types::CacheConfig {
        size_bytes: 512,
        ways: 2,
        latency: 2,
    };
    c.l2 = hmtx_types::CacheConfig {
        size_bytes: 1024,
        ways: 2,
        latency: 40,
    };
    c
}

#[test]
fn safe_overflow_spills_so_lines_and_refills_from_memory() {
    let mut mem = MemorySystem::new(tiny_cfg());
    // Pre-speculative committed values.
    for i in 0..12u64 {
        mem.memory_mut().write_word(Addr(i * 64), 100 + i);
    }
    // One transaction speculatively overwrites many lines; each write leaves
    // an S-O(0,1) backup, and the tiny hierarchy must spill some of them.
    for i in 0..12u64 {
        ok(&mut mem, i * 10, write(0, i * 64, 1, 200 + i));
    }
    assert!(
        mem.stats().safe_overflow_writebacks > 0,
        "tiny caches must have spilled S-O(0,·) backups"
    );
    // Non-speculative reads from another core still see committed values
    // (possibly refilled from memory under the S-M assertion).
    for i in 0..12u64 {
        let (v, _) = ok(&mut mem, 1_000 + i * 10, read(1, i * 64, 0));
        assert_eq!(v, 100 + i, "committed value of line {i}");
    }
    assert!(
        mem.stats().overflow_refills > 0,
        "at least one §5.4 S-O(0,a+1) refill"
    );
    // The transaction's own view is intact.
    for i in 0..12u64 {
        let (v, _) = ok(&mut mem, 2_000 + i * 10, read(0, i * 64, 1));
        assert_eq!(v, 200 + i);
    }
}

#[test]
fn unsafe_overflow_forces_abort() {
    let mut mem = MemorySystem::new(tiny_cfg());
    // Keep writing distinct lines in one transaction until the S-M versions
    // themselves no longer fit anywhere (S-O backups spill safely first).
    let mut aborted = false;
    for i in 0..200u64 {
        match mem.access(i * 10, &write(0, i * 64, 1, i)).unwrap() {
            AccessResponse::Done { .. } => {}
            AccessResponse::Misspec { cause, .. } => {
                assert!(matches!(cause, MisspecCause::SpecOverflow { .. }));
                aborted = true;
                break;
            }
        }
    }
    assert!(
        aborted,
        "speculative footprint exceeding the hierarchy must abort"
    );
}

// ------------------------------------------------------------ VID reset §4.6

#[test]
fn vid_reset_allows_vid_reuse() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 11));
    mem.commit(10, Vid(1)).unwrap();
    ok(&mut mem, 20, write(0, 0x140, 2, 22));
    mem.commit(30, Vid(2)).unwrap();
    mem.vid_reset(40);
    // VID numbering restarts at 1; old committed data is untouched.
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 11);
    ok(&mut mem, 50, write(0, 0x180, 1, 33));
    mem.commit(60, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x180), Vid(0)), 33);
    assert_eq!(mem.peek_word(Addr(0x140), Vid(0)), 22);
    assert_eq!(mem.stats().vid_resets, 1);
}

#[test]
fn vid_reset_after_abort_clears_everything_speculative() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 11));
    mem.commit(5, Vid(1)).unwrap();
    ok(&mut mem, 10, write(0, 0x140, 2, 22));
    mem.abort_all(20);
    mem.vid_reset(30);
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 11);
    assert_eq!(mem.peek_word(Addr(0x140), Vid(0)), 0, "aborted write gone");
    ok(&mut mem, 40, write(1, 0x140, 1, 44));
    mem.commit(50, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x140), Vid(0)), 44);
}

#[test]
fn abort_demotes_forwarding_replicas_to_a_coherent_state() {
    // Uncommitted value forwarding replicates version-0 data: after core 1
    // reads core 0's S-E(0,1) head, core 0 keeps an S-S residue. Figure 7
    // applied per line would restore E beside S — and that broken
    // exclusivity let a later speculative upgrade mint a *second* S-E head,
    // so the next abort left two Exclusive copies of one line.
    let a = 0x200u64;
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, read(0, a, 1));
    assert_eq!(states(&mem, a), vec![("L1[0]".into(), "S-E(0,1)".into())]);
    ok(&mut mem, 10, read(1, a, 2));
    mem.abort_all(20);
    assert_eq!(
        states(&mem, a),
        vec![
            ("L1[0]".into(), "S(0,0)".into()),
            ("L1[1]".into(), "S(0,0)".into()),
        ],
        "no replica may keep exclusivity after abort"
    );

    // Replay the historical failure: re-speculate on the warm copies, abort
    // again, and demand a clean protocol state.
    ok(&mut mem, 30, read(1, a, 1));
    ok(&mut mem, 40, read(0, a, 2));
    mem.abort_all(50);
    let violations = mem.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
}

// ---------------------------------------------------------------- misc

#[test]
fn unaligned_access_is_a_guest_bug() {
    let mut mem = MemorySystem::new(cfg());
    let err = mem.access(0, &read(0, 0x13d, 0)).unwrap_err();
    assert!(matches!(err, SimError::UnalignedAccess { .. }));
}

#[test]
fn rw_set_statistics_track_distinct_lines_per_tx() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, read(0, 0x1000, 1));
    ok(&mut mem, 1, read(0, 0x1040, 1));
    ok(&mut mem, 2, read(0, 0x1040, 1)); // duplicate
    ok(&mut mem, 3, write(0, 0x1080, 1, 1));
    mem.commit(10, Vid(1)).unwrap();
    let t = mem.stats().rw_totals();
    assert_eq!(t.transactions, 1);
    assert_eq!(t.read_lines, 2);
    assert_eq!(t.write_lines, 1);
    assert_eq!(t.combined_lines, 3);
}

#[test]
fn migration_between_cores_preserves_transaction_view() {
    // §5.2: threads can migrate between cores; their speculative data is
    // found through the VID. Start a TX on core 0, continue it on core 3.
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 1));
    ok(&mut mem, 1, write(0, 0x140, 1, 2));
    let (v, _) = ok(&mut mem, 100, read(3, 0x100, 1));
    assert_eq!(v, 1);
    ok(&mut mem, 110, write(3, 0x100, 1, 3));
    mem.commit(200, Vid(1)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 3);
    assert_eq!(mem.peek_word(Addr(0x140), Vid(0)), 2);
}

// --------------------------------------------- §8 extensions

fn directory_cfg() -> MachineConfig {
    let mut c = cfg();
    c.interconnect = hmtx_types::Interconnect::Directory {
        banks: 4,
        hop_latency: 6,
    };
    c
}

#[test]
fn directory_interconnect_preserves_protocol_semantics() {
    // The Figure 5 sequence behaves identically under the directory fabric.
    let mut mem = MemorySystem::new(directory_cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 7));
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 2));
    assert_eq!(v, 7, "uncommitted value forwarding over the directory");
    ok(&mut mem, 20, read(2, 0x100, 1));
    mem.commit(30, Vid(1)).unwrap();
    mem.commit(40, Vid(2)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 7);
    assert!(mem.stats().directory_lookups > 0);
}

#[test]
fn directory_detects_violations_like_the_bus() {
    let mut mem = MemorySystem::new(directory_cfg());
    ok(&mut mem, 0, read(1, 0x100, 2));
    let cause = misspec(&mut mem, 10, write(0, 0x100, 1, 7));
    assert!(matches!(cause, MisspecCause::StoreBelowHighVid { .. }));
}

#[test]
fn directory_misses_do_not_serialize_across_banks() {
    // Two cores missing on lines homed at different banks must not queue
    // behind each other the way the snoopy bus forces them to.
    let run = |cfg: MachineConfig| {
        let mut mem = MemorySystem::new(cfg);
        let mut total = 0u64;
        for i in 0..16u64 {
            // Same issue time: on the bus these serialize.
            match mem
                .access(1000, &read((i % 4) as usize, 0x10_000 + i * 64, 0))
                .unwrap()
            {
                AccessResponse::Done { latency, .. } => total += latency,
                other => panic!("{other:?}"),
            }
        }
        total
    };
    let bus_total = run(cfg());
    let dir_total = run(directory_cfg());
    assert!(
        dir_total < bus_total,
        "banked directory must beat the serialized bus: {dir_total} vs {bus_total}"
    );
}

fn unbounded_cfg() -> MachineConfig {
    let mut c = tiny_cfg();
    c.unbounded_sets = true;
    c
}

#[test]
fn unbounded_sets_spill_and_refill_instead_of_aborting() {
    // The same access pattern that forces SpecOverflow in
    // `unsafe_overflow_forces_abort` completes when unbounded sets are on.
    let mut mem = MemorySystem::new(unbounded_cfg());
    for i in 0..200u64 {
        ok(&mut mem, i * 10, write(0, i * 64, 1, 1000 + i));
    }
    assert!(
        mem.stats().unbounded_spills > 0,
        "tiny caches must spill S-M lines"
    );
    // The transaction's own view survives the spills.
    for i in 0..200u64 {
        let (v, _) = ok(&mut mem, 5_000 + i * 10, read(1, i * 64, 1));
        assert_eq!(v, 1000 + i, "line {i}");
    }
    assert!(
        mem.stats().unbounded_fills > 0,
        "reads must retrieve spilled versions"
    );
    mem.commit(100_000, Vid(1)).unwrap();
    mem.drain_committed().expect("clean drain");
    for i in 0..200u64 {
        assert_eq!(mem.memory().read_word(Addr(i * 64)), 1000 + i);
    }
}

#[test]
fn unbounded_sets_abort_cleanly_with_spilled_state() {
    let mut mem = MemorySystem::new(unbounded_cfg());
    for i in 0..64u64 {
        mem.memory_mut().write_word(Addr(i * 64), 7);
    }
    for i in 0..64u64 {
        ok(&mut mem, i * 10, write(0, i * 64, 1, 99));
    }
    assert!(mem.stats().unbounded_spills > 0);
    mem.abort_all(10_000);
    mem.drain_committed().expect("clean");
    for i in 0..64u64 {
        assert_eq!(
            mem.memory().read_word(Addr(i * 64)),
            7,
            "line {i} must roll back"
        );
    }
}

#[test]
fn unbounded_spilled_sm_still_asserts_for_lower_vids() {
    // A spilled S-M must still force §5.4's S-O(0, a+1) wrap for lower-VID
    // readers falling through to memory.
    let mut mem = MemorySystem::new(unbounded_cfg());
    mem.memory_mut().write_word(Addr(0), 5);
    ok(&mut mem, 0, write(0, 0, 2, 9));
    // Push the S-M for line 0 out of the hierarchy.
    for i in 1..200u64 {
        ok(&mut mem, i * 10, write(0, i * 64, 2, i));
    }
    let (v, _) = ok(&mut mem, 10_000, read(1, 0, 1));
    assert_eq!(v, 5, "VID 1 must see the committed value, not VID 2's");
    let (v, _) = ok(&mut mem, 10_010, read(2, 0, 2));
    assert_eq!(v, 9, "VID 2 must still find its spilled version");
}

// ------------------------------------------ line granularity (§7.1)

#[test]
fn false_sharing_on_one_line_is_conservatively_aborted() {
    // HMTX versions at cache-line granularity (vs Vachharajani's bytes):
    // two transactions writing *different words* of the same line out of
    // order are treated as an output dependence violation.
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(1, 0x108, 2, 22)); // word 1 of line 0x100, VID 2
    let cause = misspec(&mut mem, 10, write(0, 0x100, 1, 11)); // word 0, VID 1
    assert!(matches!(
        cause,
        MisspecCause::StoreBelowHighVid { .. } | MisspecCause::StoreToSupersededVersion { .. }
    ));
}

#[test]
fn false_sharing_in_vid_order_is_fine() {
    // In VID order the same pattern is harmless: the later write just makes
    // a new version of the line carrying both words.
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 11));
    ok(&mut mem, 10, write(1, 0x108, 2, 22));
    mem.commit(20, Vid(1)).unwrap();
    mem.commit(30, Vid(2)).unwrap();
    assert_eq!(mem.peek_word(Addr(0x100), Vid(0)), 11);
    assert_eq!(mem.peek_word(Addr(0x108), Vid(0)), 22);
}

// ------------------------------------------------------------- tracing

#[test]
fn trace_records_the_figure5_story() {
    use crate::trace::{ServedFrom, TraceEvent};
    let mut mem = MemorySystem::new(eager_cfg());
    mem.set_trace_capacity(64);
    ok(&mut mem, 0, read(0, 0x40, 0));
    ok(&mut mem, 10, read(0, 0x40, 1));
    ok(&mut mem, 20, write(0, 0x40, 1, 111));
    ok(&mut mem, 30, read(0, 0x40, 2));
    ok(&mut mem, 40, write(0, 0x40, 2, 222));
    ok(&mut mem, 50, read(1, 0x40, 1));
    mem.commit(60, Vid(1)).unwrap();
    mem.commit(70, Vid(2)).unwrap();

    let events = mem.take_trace();
    // Two splits (one per speculative store), a peer transfer for thread 2's
    // read, and two commits.
    let splits: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Split {
                retained, created, ..
            } => Some((retained.clone(), created.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        splits,
        vec![
            ("S-O(0,1)".to_string(), "S-M(1,1)".to_string()),
            ("S-O(1,2)".to_string(), "S-M(2,2)".to_string()),
        ]
    );
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::Access {
            served: ServedFrom::Peer,
            vid: Vid(1),
            ..
        }
    )));
    let commits: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Commit { vid, .. } => Some(*vid),
            _ => None,
        })
        .collect();
    assert_eq!(commits, vec![Vid(1), Vid(2)]);
    // The rendered trace is human-readable.
    let text = crate::trace::render_trace(&events);
    assert!(text.contains("split"));
    assert!(text.contains("commit v1"));
}

#[test]
fn trace_records_misspeculation() {
    use crate::trace::TraceEvent;
    let mut mem = MemorySystem::new(cfg());
    mem.set_trace_capacity(16);
    ok(&mut mem, 0, read(1, 0x100, 2));
    let _ = misspec(&mut mem, 10, write(0, 0x100, 1, 7));
    mem.abort_all(20);
    let events = mem.take_trace();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Misspec { .. })));
    assert!(events.iter().any(|e| matches!(e, TraceEvent::Abort { .. })));
}

// ------------------------------------------- plain MOESI corners (VID 0)

#[test]
fn moesi_read_sharing_downgrades_the_owner() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x500, 0, 9)); // core0: M
    assert_eq!(states(&mem, 0x500), vec![("L1[0]".into(), "M(0,0)".into())]);
    ok(&mut mem, 10, read(1, 0x500, 0)); // share
    assert_eq!(
        states(&mem, 0x500),
        vec![
            ("L1[0]".into(), "O(0,0)".into()),
            ("L1[1]".into(), "S(0,0)".into())
        ]
    );
    // A third reader is served without disturbing ownership.
    ok(&mut mem, 20, read(2, 0x500, 0));
    let s = states(&mem, 0x500);
    assert!(s.contains(&("L1[0]".into(), "O(0,0)".into())), "{s:?}");
}

#[test]
fn moesi_write_invalidates_all_sharers() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x500, 0, 9));
    ok(&mut mem, 10, read(1, 0x500, 0));
    ok(&mut mem, 20, read(2, 0x500, 0));
    ok(&mut mem, 30, write(3, 0x500, 0, 10)); // upgrade from core3
    let s = states(&mem, 0x500);
    assert_eq!(s, vec![("L1[3]".into(), "M(0,0)".into())], "{s:?}");
    let (v, _) = ok(&mut mem, 40, read(0, 0x500, 0));
    assert_eq!(v, 10);
}

#[test]
fn moesi_clean_exclusive_fill_from_memory() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x600), 5);
    ok(&mut mem, 0, read(0, 0x600, 0));
    assert_eq!(states(&mem, 0x600), vec![("L1[0]".into(), "E(0,0)".into())]);
    // A second reader turns both into shared copies.
    ok(&mut mem, 10, read(1, 0x600, 0));
    assert_eq!(
        states(&mem, 0x600),
        vec![
            ("L1[0]".into(), "S(0,0)".into()),
            ("L1[1]".into(), "S(0,0)".into())
        ]
    );
}

#[test]
fn moesi_dirty_data_survives_eviction_to_memory() {
    // Write a value, then stream enough conflicting lines through the tiny
    // hierarchy to evict it all the way to memory; the value must survive.
    let mut mem = MemorySystem::new(tiny_cfg());
    ok(&mut mem, 0, write(0, 0x0, 0, 1234));
    for i in 1..200u64 {
        ok(&mut mem, i * 10, read(0, i * 64, 0));
    }
    let (v, _) = ok(&mut mem, 10_000, read(1, 0x0, 0));
    assert_eq!(v, 1234);
}

#[test]
fn spec_read_of_shared_line_gains_exclusivity_first() {
    // Figure 4's note: O and S follow the same path as M or E once
    // acquiring exclusive access.
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x700, 0, 3));
    ok(&mut mem, 10, read(1, 0x700, 0)); // O@0, S@1
    ok(&mut mem, 20, read(1, 0x700, 1)); // speculative read on the S copy
    let s = states(&mem, 0x700);
    assert_eq!(s.len(), 1, "other copies invalidated: {s:?}");
    assert!(
        s[0].1.starts_with("S-M(0,1)") || s[0].1.starts_with("S-E(0,1)"),
        "{s:?}"
    );
    let upgrades = mem.stats().upgrades;
    assert!(upgrades >= 1);
}

// ------------------------------------------- proptest regression (PR 1)

/// Pins the shrunk counterexample from
/// `tests/proptest_serializability.proptest-regressions` as a deterministic
/// unit test (the vendored proptest stub cannot replay upstream `cc` seeds).
///
/// Schedule (committing each transaction as soon as it and all earlier ones
/// have finished, exactly as the property test drives it):
///
/// 1. tx1 @ core1: write 0x40000 = 0
/// 2. tx2 @ core1: read  0x40040
/// 3. tx1 @ core0: read  0x40000   (tx1's S-M version migrates to core 0)
/// 4. tx1 @ core3: read  0x40000   (and on to core 3) → commit(1)
/// 5. tx2 @ core0: read  0x40040
/// 6. tx2 @ core2: read  0x40040
/// 7. tx2 @ core3: write 0x40000 = BIG → commit(2)
///
/// Serial VID order ends with 0x40000 = BIG (tx2's write lands last): tx2's
/// later-VID store to the line tx1 speculatively wrote and migrated across
/// cores must split off a fresh S-M(2,2) version (§4.3) rather than losing
/// the store or the migrated tx1 version. Pinned here so the schedule keeps
/// running even though the vendored proptest cannot replay `cc` seeds.
#[test]
fn regression_later_vid_write_to_migrated_line_is_not_lost() {
    const A: u64 = 0x4_0000;
    const B: u64 = 0x4_0040;
    const BIG: u64 = 14448302813484138936;
    for lazy in [true, false] {
        let mut c = cfg();
        c.hmtx.lazy_commit = lazy;
        let mut mem = MemorySystem::new(c);
        ok(&mut mem, 10, write(1, A, 1, 0));
        ok(&mut mem, 20, read(1, B, 2));
        ok(&mut mem, 30, read(0, A, 1));
        ok(&mut mem, 40, read(3, A, 1));
        mem.commit(50, Vid(1)).unwrap();
        ok(&mut mem, 60, read(0, B, 2));
        ok(&mut mem, 70, read(2, B, 2));
        ok(&mut mem, 80, write(3, A, 2, BIG));
        mem.commit(90, Vid(2)).unwrap();
        let violations = mem.check_invariants();
        assert!(violations.is_empty(), "lazy={lazy}: {violations:?}");
        mem.drain_committed().expect("no speculative leftovers");
        assert_eq!(
            mem.memory().read_word(Addr(A)),
            BIG,
            "lazy={lazy}: tx2's committed write must win over tx1's"
        );
        assert_eq!(mem.memory().read_word(Addr(B)), 0, "lazy={lazy}");
    }
}

// ------------------------------------- wrong-path SLA acknowledgment §5.1

/// Wrong-path loads are acknowledged without an SLA: the squashed load
/// reads the line's current content and leaves no read mark, and a later
/// §5.1 verification of the acknowledged value behaves exactly like a
/// correct-path check — passing while the content is unchanged, reporting
/// `SlaValueMismatch` once a lower-VID store (legal, because no mark was
/// left) rewrites the line.
#[test]
fn wrong_path_load_acknowledgment_is_verifiable_but_sla_free() {
    let mut mem = MemorySystem::new(cfg());
    mem.memory_mut().write_word(Addr(0x100), 5);
    let (v, sla) = ok(&mut mem, 0, wrong_path_read(1, 0x100, 2));
    assert_eq!(v, 5);
    assert!(!sla, "wrong-path loads never request an SLA");
    assert_eq!(mem.stats().slas_sent, 0);
    // Replayed on the correct path, the acknowledged value still verifies...
    assert!(mem.verify_sla(Addr(0x100), Vid(2), 5).is_none());
    // ...until VID 1 stores to the unmarked line, after which the stale
    // acknowledgment is detected and the fresh forwarded value verifies.
    ok(&mut mem, 10, write(0, 0x100, 1, 7));
    assert_eq!(mem.stats().sla_aborts_avoided, 1);
    assert!(matches!(
        mem.verify_sla(Addr(0x100), Vid(2), 5),
        Some(MisspecCause::SlaValueMismatch { .. })
    ));
    assert!(mem.verify_sla(Addr(0x100), Vid(2), 7).is_none());
}

/// A wrong-path load served by a peer's uncommitted version is also
/// acknowledged SLA-free: forwarding still answers with the speculative
/// data, but neither side records a VID mark for the squashed reader, so
/// the whole group commits as if the load never happened.
#[test]
fn wrong_path_load_forwarded_from_a_peer_leaves_no_marks() {
    let mut mem = MemorySystem::new(cfg());
    ok(&mut mem, 0, write(0, 0x100, 1, 7));
    let (v, sla) = ok(&mut mem, 10, wrong_path_read(1, 0x100, 3));
    assert_eq!(v, 7, "forwarding also serves squashed loads");
    assert!(!sla, "peer-supplied wrong-path loads need no SLA");
    let s = states(&mem, 0x100);
    assert!(
        s.iter().all(|(_, st)| !st.contains(",3)")),
        "no VID-3 mark may survive the squashed load: {s:?}"
    );
    // An intervening VID-2 store to the same line stays legal.
    ok(&mut mem, 20, write(2, 0x100, 2, 9));
    mem.commit(30, Vid(1)).unwrap();
    mem.commit(40, Vid(2)).unwrap();
    mem.commit(50, Vid(3)).unwrap();
    let violations = mem.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    mem.drain_committed().unwrap();
    assert_eq!(mem.memory().read_word(Addr(0x100)), 9);
}

// -------------------------------------------- VID exhaustion mid-run §4.6

/// Exhausting the VID space mid-run with a tiny `vid_bits`: a group that
/// occupies every available VID (with cross-VID forwarding inside it)
/// commits in order, the §4.6 reset restarts numbering, and the reused
/// VID 1 builds correctly on the previous group's committed data.
#[test]
fn vid_space_exhaustion_resets_and_reuses_vids_against_committed_data() {
    let mut c = cfg();
    c.hmtx.vid_bits = 2; // max_vid = 3: the whole VID space is one group.
    let mut mem = MemorySystem::new(c);
    ok(&mut mem, 0, write(0, 0x100, 1, 11));
    let (v, _) = ok(&mut mem, 10, read(1, 0x100, 2));
    assert_eq!(v, 11, "forwarding inside the exhausting group");
    ok(&mut mem, 20, write(1, 0x140, 2, 22));
    ok(&mut mem, 30, write(2, 0x180, 3, 33));
    mem.commit(40, Vid(1)).unwrap();
    mem.commit(50, Vid(2)).unwrap();
    mem.commit(60, Vid(3)).unwrap();
    let latency = mem.vid_reset(70);
    assert!(latency > 0, "the reset broadcast takes time");
    assert_eq!(mem.stats().vid_resets, 1);
    assert_eq!(mem.last_committed(), Vid(0), "numbering restarts");
    // The reused VID 1 reads the old group's data and overwrites one line.
    let (v, _) = ok(&mut mem, 80, read(3, 0x100, 1));
    assert_eq!(v, 11, "committed data survives the reset");
    ok(&mut mem, 90, write(3, 0x140, 1, 44));
    mem.commit(100, Vid(1)).unwrap();
    let violations = mem.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    mem.drain_committed().unwrap();
    assert_eq!(mem.memory().read_word(Addr(0x100)), 11);
    assert_eq!(mem.memory().read_word(Addr(0x140)), 44);
    assert_eq!(mem.memory().read_word(Addr(0x180)), 33);
}

// ------------------------------------ speculative read-set eviction §5.4

/// Read marks may not silently leave the hierarchy: an `S-E(0,·)` victim is
/// not `safe_to_overflow` (dropping it would blind conflict detection), so
/// a transaction whose read set outgrows the tiny hierarchy must abort with
/// `SpecOverflow` — after the caches demonstrably held a useful number of
/// marks.
#[test]
fn read_set_eviction_pressure_aborts_rather_than_dropping_marks() {
    let mut mem = MemorySystem::new(tiny_cfg());
    for i in 0..200u64 {
        mem.memory_mut().write_word(Addr(i * 64), 100 + i);
    }
    let mut aborted_at = None;
    for i in 0..200u64 {
        match mem.access(i * 10, &read(0, i * 64, 1)).unwrap() {
            AccessResponse::Done { value, .. } => assert_eq!(value, 100 + i),
            AccessResponse::Misspec { cause, .. } => {
                assert!(matches!(cause, MisspecCause::SpecOverflow { .. }));
                aborted_at = Some(i);
                break;
            }
        }
    }
    let at = aborted_at.expect("a read set larger than the hierarchy must abort");
    assert!(at >= 8, "the hierarchy held several marks first, aborted at {at}");
}

/// With the §8 unbounded-sets extension the same pressure spills read marks
/// into the overflow table instead of aborting, and the group still commits
/// and drains cleanly.
#[test]
fn unbounded_sets_spill_read_marks_instead_of_aborting() {
    let mut c = tiny_cfg();
    c.unbounded_sets = true;
    let mut mem = MemorySystem::new(c);
    for i in 0..64u64 {
        mem.memory_mut().write_word(Addr(i * 64), 100 + i);
    }
    for i in 0..64u64 {
        let (v, _) = ok(&mut mem, i * 10, read(0, i * 64, 1));
        assert_eq!(v, 100 + i);
    }
    assert!(
        mem.stats().unbounded_spills > 0,
        "the tiny hierarchy must have spilled read marks"
    );
    mem.commit(1_000, Vid(1)).unwrap();
    let violations = mem.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    mem.drain_committed().unwrap();
    for i in 0..64u64 {
        assert_eq!(mem.memory().read_word(Addr(i * 64)), 100 + i);
    }
}
