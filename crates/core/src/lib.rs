//! The HMTX protocol engine — the primary contribution of *Hardware
//! Multithreaded Transactions* (ASPLOS 2018) — implemented over the
//! `hmtx-mem` substrate.
//!
//! A multithreaded transaction (MTX) lets several threads collaborate on one
//! transaction that commits or aborts atomically. The protocol versions
//! memory: every cache line carries `(modVID, highVID)`, speculative
//! accesses are labeled with their transaction's VID, and the coherence
//! rules of §4 provide the two defining MTX properties:
//!
//! 1. **Group transaction commit** — all speculative modifications from all
//!    threads of a transaction, spread across caches, commit together
//!    ([`MemorySystem::commit`]).
//! 2. **Uncommitted value forwarding** — uncommitted stores from one
//!    pipeline stage are visible to later stages and later transactions in
//!    VID order ([`MemorySystem::access`]).
//!
//! The engine also implements the resilience machinery of §5: speculative
//! load acknowledgments that keep branch-misprediction wrong-path loads from
//! causing false misspeculation, lazy commit/abort processing, VID
//! overflow/reset, and safe overflow of `S-O(0,·)` lines past the last-level
//! cache.
//!
//! # Examples
//!
//! ```
//! use hmtx_core::{AccessKind, AccessRequest, AccessResponse, MemorySystem};
//! use hmtx_types::{Addr, CoreId, MachineConfig, Vid};
//!
//! let mut mem = MemorySystem::new(MachineConfig::test_default());
//! // Thread on core 0, inside transaction VID 1, stores speculatively:
//! let store = AccessRequest {
//!     core: CoreId(0),
//!     addr: Addr(0x100),
//!     kind: AccessKind::Write(42),
//!     vid: Vid(1),
//!     wrong_path: false,
//! };
//! mem.access(0, &store)?;
//! // A thread on another core, same transaction, sees the uncommitted value:
//! let load = AccessRequest {
//!     core: CoreId(1),
//!     addr: Addr(0x100),
//!     kind: AccessKind::Read,
//!     vid: Vid(1),
//!     wrong_path: false,
//! };
//! match mem.access(10_000, &load)? {
//!     AccessResponse::Done { value, .. } => assert_eq!(value, 42),
//!     other => panic!("unexpected {other:?}"),
//! }
//! mem.commit(20_000, Vid(1))?;
//! # Ok::<(), hmtx_types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod faults;
pub mod invariants;
pub mod protocol;
pub mod stats;
pub mod trace;
pub mod transitions;

pub use backend::{MoesiHmtx, ProtocolBackend};
pub use faults::{FaultPlan, FaultSite};
pub use invariants::Violation;
pub use protocol::{AccessKind, AccessRequest, AccessResponse, MemorySystem, MisspecCause};
pub use stats::{LatencyHistogram, MemStats, RwSetTotals};
pub use trace::{render_trace, ServedFrom, TraceEvent, Tracer};
pub use transitions::{apply_abort, apply_commit, apply_vid_reset, version_hits, Outcome};

// The parallel experiment runner moves whole memory systems (inside
// `Machine`) across host threads; keep the simulation state `Send + Sync`
// by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<MemorySystem>();
    assert_send_sync::<MemStats>();
    assert_send_sync::<RwSetTotals>();
};

#[cfg(test)]
mod protocol_tests;
