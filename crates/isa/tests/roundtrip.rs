//! Property test: the assembler parses everything the disassembler prints,
//! reproducing the exact program.

use hmtx_isa::{assemble, AluOp, Cond, Instr, Operand, Program, ProgramBuilder, Reg};
use hmtx_types::QueueId;
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(Reg::from_index)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (-1000i64..1000).prop_map(Operand::Imm)
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::SltU),
        Just(AluOp::Slt),
        Just(AluOp::Seq),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::LtU),
        Just(Cond::GeU),
    ]
}

/// One instruction with any branch/jump target within `len`.
fn arb_instr(len: usize) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), -10_000i64..10_000).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_operand())
            .prop_map(|(op, rd, rs, rhs)| Instr::Alu { op, rd, rs, rhs }),
        (arb_reg(), arb_reg(), -64i64..64).prop_map(|(rd, base, disp)| Instr::Load {
            rd,
            base,
            disp: disp * 8
        }),
        (arb_reg(), arb_reg(), -64i64..64).prop_map(|(rs, base, disp)| Instr::Store {
            rs,
            base,
            disp: disp * 8
        }),
        (arb_cond(), arb_reg(), arb_operand(), 0..len).prop_map(|(cond, rs, rhs, target)| {
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            }
        }),
        (0..len).prop_map(|target| Instr::Jump { target }),
        Just(Instr::Halt),
        arb_operand().prop_map(|amount| Instr::Compute { amount }),
        arb_reg().prop_map(|rvid| Instr::BeginMtx { rvid }),
        arb_reg().prop_map(|rvid| Instr::CommitMtx { rvid }),
        arb_reg().prop_map(|rvid| Instr::AbortMtx { rvid }),
        (0..len).prop_map(|handler| Instr::InitMtx { handler }),
        Just(Instr::VidReset),
        (0usize..16, arb_reg()).prop_map(|(q, rs)| Instr::Produce { q: QueueId(q), rs }),
        (arb_reg(), 0usize..16).prop_map(|(rd, q)| Instr::Consume { rd, q: QueueId(q) }),
        arb_reg().prop_map(|rs| Instr::Out { rs }),
        (0u32..1000).prop_map(|id| Instr::Marker { id }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..40)
        .prop_flat_map(|len| prop::collection::vec(arb_instr(len), len))
        .prop_map(|instrs| {
            let mut b = ProgramBuilder::new();
            for i in instrs {
                b.raw(i);
            }
            b.build().expect("raw programs always build")
        })
}

/// Strips the `index:` prefix from each disassembly line.
fn strip_indices(disasm: &str) -> String {
    disasm
        .lines()
        .map(|l| {
            l.split_once(':')
                .expect("disasm line format")
                .1
                .trim()
                .to_string()
                + "\n"
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn assemble_inverts_disassemble(p in arb_program()) {
        let text = strip_indices(&p.disassemble());
        let reparsed = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(p, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The assembler must never panic on arbitrary input — it either parses
    /// or returns a line-numbered error.
    #[test]
    fn assembler_never_panics_on_garbage(input in "\\PC{0,200}") {
        let _ = assemble(&input);
    }

    /// Arbitrary label-ish structures with random mnemonics don't panic.
    #[test]
    fn assembler_never_panics_on_structured_garbage(
        lines in prop::collection::vec("[a-z]{1,8}( [r@a-z0-9,()#x-]{0,20})?", 0..20)
    ) {
        let _ = assemble(&lines.join("\n"));
    }
}
