//! Instruction definitions for the mini-ISA.

use std::fmt;

use hmtx_types::QueueId;

/// A general-purpose 64-bit register. The ISA provides 32 of them.
///
/// `R0` is an ordinary register (it is *not* hard-wired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// Total number of architectural registers.
    pub const COUNT: usize = 32;

    /// The register's index, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn from_index(index: usize) -> Reg {
        const ALL: [Reg; Reg::COUNT] = [
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
            Reg::R15,
            Reg::R16,
            Reg::R17,
            Reg::R18,
            Reg::R19,
            Reg::R20,
            Reg::R21,
            Reg::R22,
            Reg::R23,
            Reg::R24,
            Reg::R25,
            Reg::R26,
            Reg::R27,
            Reg::R28,
            Reg::R29,
            Reg::R30,
            Reg::R31,
        ];
        ALL[index]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Second ALU/branch operand: a register or a sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

/// Arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero yields zero, like a trap handler
    /// would return).
    Div,
    /// Unsigned remainder (modulo zero yields the dividend).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (shift amount taken modulo 64).
    Shl,
    /// Logical right shift (shift amount taken modulo 64).
    Shr,
    /// Set `rd` to 1 if `rs < rhs` (unsigned), else 0.
    SltU,
    /// Set `rd` to 1 if `rs < rhs` (signed), else 0.
    Slt,
    /// Set `rd` to 1 if `rs == rhs`, else 0.
    Seq,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    ///
    /// # Examples
    ///
    /// ```
    /// use hmtx_isa::AluOp;
    /// assert_eq!(AluOp::Add.apply(2, 3), 5);
    /// assert_eq!(AluOp::SltU.apply(2, 3), 1);
    /// assert_eq!(AluOp::Div.apply(7, 0), 0);
    /// ```
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(0),
            AluOp::Rem => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
            AluOp::SltU => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Seq => u64::from(a == b),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::SltU => "sltu",
            AluOp::Slt => "slt",
            AluOp::Seq => "seq",
        };
        f.write_str(s)
    }
}

/// Branch conditions comparing a register with an [`Operand`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition on two 64-bit values.
    ///
    /// # Examples
    ///
    /// ```
    /// use hmtx_isa::Cond;
    /// assert!(Cond::Ne.eval(1, 0));
    /// assert!(Cond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!Cond::LtU.eval(u64::MAX, 0));
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        };
        f.write_str(s)
    }
}

/// One mini-ISA instruction.
///
/// Memory operands compute the effective address as `regs[base] + disp`.
/// Loads and stores move aligned 8-byte words. Branch targets are absolute
/// instruction indices (resolved from labels by
/// [`ProgramBuilder`](crate::ProgramBuilder)).
///
/// Field names follow assembly conventions: `rd` destination, `rs` source,
/// `base`/`disp` memory operands, `rvid` the VID operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `rd <- imm`.
    Li { rd: Reg, imm: i64 },
    /// `rd <- rs`.
    Mov { rd: Reg, rs: Reg },
    /// `rd <- op(rs, rhs)`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rhs: Operand,
    },
    /// `rd <- mem[regs[base] + disp]` (8 bytes).
    Load { rd: Reg, base: Reg, disp: i64 },
    /// `mem[regs[base] + disp] <- rs` (8 bytes).
    Store { rs: Reg, base: Reg, disp: i64 },
    /// Conditional branch to `target` if `cond(rs, rhs)` holds.
    Branch {
        cond: Cond,
        rs: Reg,
        rhs: Operand,
        target: usize,
    },
    /// Unconditional jump to `target`.
    Jump { target: usize },
    /// Stop this thread.
    Halt,
    /// Busy the core for `cycles(rhs)` cycles (models pure computation whose
    /// memory traffic is not interesting to the cache hierarchy).
    Compute { amount: Operand },
    /// `beginMTX(regs[rvid])` — enter the MTX with that VID, or return to
    /// non-speculative execution when the VID is zero (§3.1).
    BeginMtx { rvid: Reg },
    /// `commitMTX(regs[rvid])` — atomically group-commit the MTX (§3.1).
    CommitMtx { rvid: Reg },
    /// `abortMTX(regs[rvid])` — software-triggered misspeculation (§3.1).
    AbortMtx { rvid: Reg },
    /// `initMTX(handler)` — register the recovery entry point (§3.1).
    InitMtx { handler: usize },
    /// VID reset broadcast (§4.6). Software must have drained every
    /// outstanding commit first; the memory system clears all line VIDs and
    /// LC VID registers so numbering can restart at 1.
    VidReset,
    /// Push `regs[rs]` onto hardware queue `q`; blocks while full.
    Produce { q: QueueId, rs: Reg },
    /// Pop from hardware queue `q` into `rd`; blocks while empty.
    Consume { rd: Reg, q: QueueId },
    /// Append `regs[rs]` to the transaction-buffered program output (§4.7).
    Out { rs: Reg },
    /// Host-visible marker (e.g. iteration boundaries for statistics).
    Marker { id: u32 },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instr::Alu { op, rd, rs, rhs } => write!(f, "{op} {rd}, {rs}, {rhs}"),
            Instr::Load { rd, base, disp } => write!(f, "ld {rd}, {disp}({base})"),
            Instr::Store { rs, base, disp } => write!(f, "st {rs}, {disp}({base})"),
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                write!(f, "b{cond} {rs}, {rhs}, @{target}")
            }
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Compute { amount } => write!(f, "compute {amount}"),
            Instr::BeginMtx { rvid } => write!(f, "beginMTX {rvid}"),
            Instr::CommitMtx { rvid } => write!(f, "commitMTX {rvid}"),
            Instr::AbortMtx { rvid } => write!(f, "abortMTX {rvid}"),
            Instr::InitMtx { handler } => write!(f, "initMTX @{handler}"),
            Instr::VidReset => write!(f, "vidreset"),
            Instr::Produce { q, rs } => write!(f, "produce {q}, {rs}"),
            Instr::Consume { rd, q } => write!(f, "consume {rd}, {q}"),
            Instr::Out { rs } => write!(f, "out {rs}"),
            Instr::Marker { id } => write!(f, "marker #{id}"),
        }
    }
}

impl Instr {
    /// Returns `true` for instructions that access guest memory (and hence
    /// are labeled with the active VID by the HMTX hardware).
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Returns `true` for control-flow instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_round_trip() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).index(), i);
        }
        assert_eq!(Reg::R17.to_string(), "r17");
    }

    #[test]
    #[should_panic]
    fn reg_from_index_out_of_range_panics() {
        let _ = Reg::from_index(32);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Rem.apply(7, 4), 3);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift amounts wrap mod 64");
        assert_eq!(AluOp::Shr.apply(8, 3), 1);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1);
        assert_eq!(AluOp::SltU.apply(u64::MAX, 0), 0);
        assert_eq!(AluOp::Seq.apply(4, 4), 1);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Ge.eval(0, u64::MAX), "signed: 0 >= -1");
        assert!(Cond::GeU.eval(u64::MAX, 0));
        assert!(!Cond::Lt.eval(3, 3));
        assert!(Cond::LtU.eval(3, 4));
    }

    #[test]
    fn instr_classification() {
        assert!(Instr::Load {
            rd: Reg::R1,
            base: Reg::R0,
            disp: 0
        }
        .is_memory());
        assert!(Instr::Store {
            rs: Reg::R1,
            base: Reg::R0,
            disp: 0
        }
        .is_memory());
        assert!(!Instr::Halt.is_memory());
        assert!(Instr::Halt.is_control());
        assert!(Instr::Jump { target: 3 }.is_control());
        assert!(!Instr::Out { rs: Reg::R1 }.is_control());
    }

    #[test]
    fn disassembly_is_readable() {
        let i = Instr::Branch {
            cond: Cond::Ne,
            rs: Reg::R2,
            rhs: Operand::Imm(0),
            target: 7,
        };
        assert_eq!(i.to_string(), "bne r2, 0, @7");
        assert_eq!(
            Instr::Load {
                rd: Reg::R1,
                base: Reg::R3,
                disp: 8
            }
            .to_string(),
            "ld r1, 8(r3)"
        );
        assert_eq!(Instr::BeginMtx { rvid: Reg::R4 }.to_string(), "beginMTX r4");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::R5), Operand::Reg(Reg::R5));
        assert_eq!(Operand::from(-3i64), Operand::Imm(-3));
    }
}
