//! A text assembler for the mini-ISA.
//!
//! Accepts exactly the syntax [`Program::disassemble`] produces (absolute
//! `@index` targets), plus named labels for hand-written code:
//!
//! ```
//! use hmtx_isa::asm::assemble;
//!
//! let program = assemble(
//!     r"
//!     ; sum 1..=10 into r2
//!         li   r1, 0
//!         li   r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         add  r1, r1, 1
//!         bltu r1, 11, loop
//!         out  r2
//!         halt
//!     ",
//! )?;
//! assert_eq!(program.len(), 7);
//! # Ok::<(), hmtx_types::SimError>(())
//! ```
//!
//! The grammar, one instruction per line (`;` or `#` start comments):
//!
//! ```text
//! li rd, imm           mov rd, rs
//! add|sub|mul|div|rem|and|or|xor|shl|shr|sltu|slt|seq rd, rs, (rt|imm)
//! ld rd, disp(base)    st rs, disp(base)
//! beq|bne|blt|bge|bltu|bgeu rs, (rt|imm), target
//! j target             halt
//! compute (n|reg)      out rs            marker #id
//! beginMTX rvid        commitMTX rvid    abortMTX rvid
//! initMTX target       vidreset
//! produce qN, rs       consume rd, qN
//! ```
//!
//! where `target` is `@index`, a bare label name, or a leading-numeric line
//! index, and labels are declared as `name:` on their own line or before an
//! instruction.

use std::collections::HashMap;

use hmtx_types::{QueueId, SimError};

use crate::instr::{AluOp, Cond, Instr, Operand, Reg};
use crate::program::Program;

/// Assembles mini-ISA text into a [`Program`].
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] with the offending line on any syntax
/// error, unknown mnemonic/register, or unresolved label.
pub fn assemble(text: &str) -> Result<Program, SimError> {
    let mut instrs: Vec<(usize, PendingInstr)> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let mut line = raw;
        if let Some(i) = line.find([';', '#']) {
            // `marker #id` is the one place '#' is not a comment.
            if !line.trim_start().starts_with("marker") {
                line = &line[..i];
            }
        }
        let mut line = line.trim();
        // Leading labels (possibly several) on this line.
        while let Some(colon) = line.find(':') {
            let (name, rest) = line.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if labels.insert(name.to_string(), instrs.len()).is_some() {
                return Err(err(lineno, raw, &format!("label `{name}` defined twice")));
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        instrs.push((lineno, parse_instr(line).map_err(|m| err(lineno, raw, &m))?));
    }

    let mut b = crate::program::ProgramBuilder::new();
    let resolve = |t: &Target, lineno: usize| -> Result<usize, SimError> {
        match t {
            Target::Index(i) => Ok(*i),
            Target::Label(name) => labels.get(name).copied().ok_or_else(|| {
                SimError::BadProgram(format!("line {}: unknown label `{name}`", lineno + 1))
            }),
        }
    };
    for (lineno, p) in instrs {
        match p {
            PendingInstr::Ready(i) => {
                b.raw(i);
            }
            PendingInstr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                let target = resolve(&target, lineno)?;
                b.raw(Instr::Branch {
                    cond,
                    rs,
                    rhs,
                    target,
                });
            }
            PendingInstr::Jump(target) => {
                let target = resolve(&target, lineno)?;
                b.raw(Instr::Jump { target });
            }
            PendingInstr::InitMtx(target) => {
                let target = resolve(&target, lineno)?;
                b.raw(Instr::InitMtx { handler: target });
            }
        }
    }
    b.build()
}

fn err(lineno: usize, raw: &str, msg: &str) -> SimError {
    SimError::BadProgram(format!("line {}: {msg}: `{}`", lineno + 1, raw.trim()))
}

#[derive(Debug, Clone)]
enum Target {
    Index(usize),
    Label(String),
}

#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instr),
    Branch {
        cond: Cond,
        rs: Reg,
        rhs: Operand,
        target: Target,
    },
    Jump(Target),
    InitMtx(Target),
}

fn parse_reg(tok: &str) -> Result<Reg, String> {
    let tok = tok.trim();
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("expected register, got `{tok}`"))?;
    if idx >= Reg::COUNT {
        return Err(format!("register index out of range: `{tok}`"));
    }
    Ok(Reg::from_index(idx))
}

fn parse_imm(tok: &str) -> Result<i64, String> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad immediate `{tok}`"))?
    } else {
        body.parse::<i64>()
            .map_err(|_| format!("bad immediate `{tok}`"))?
    };
    Ok(if neg { -v } else { v })
}

fn parse_operand(tok: &str) -> Result<Operand, String> {
    let tok = tok.trim();
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Operand::Reg(parse_reg(tok)?))
    } else {
        Ok(Operand::Imm(parse_imm(tok)?))
    }
}

fn parse_target(tok: &str) -> Result<Target, String> {
    let tok = tok.trim();
    if let Some(idx) = tok.strip_prefix('@') {
        return idx
            .parse()
            .map(Target::Index)
            .map_err(|_| format!("bad target `{tok}`"));
    }
    if tok.chars().all(|c| c.is_ascii_digit()) && !tok.is_empty() {
        return Ok(Target::Index(tok.parse().unwrap()));
    }
    if tok.is_empty() || !tok.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(format!("bad target `{tok}`"));
    }
    Ok(Target::Label(tok.to_string()))
}

fn parse_queue(tok: &str) -> Result<QueueId, String> {
    tok.trim()
        .strip_prefix('q')
        .and_then(|n| n.parse().ok())
        .map(QueueId)
        .ok_or_else(|| format!("expected queue, got `{tok}`"))
}

/// Parses `disp(base)` memory operands.
fn parse_mem(tok: &str) -> Result<(Reg, i64), String> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| format!("expected disp(base), got `{tok}`"))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| format!("expected disp(base), got `{tok}`"))?;
    let disp = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open])?
    };
    let base = parse_reg(&tok[open + 1..close])?;
    Ok((base, disp))
}

fn parse_instr(line: &str) -> Result<PendingInstr, String> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nargs = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` takes {n} operands, got {}",
                args.len()
            ))
        }
    };

    let alu = |op: AluOp, args: &[&str]| -> Result<PendingInstr, String> {
        if args.len() != 3 {
            return Err(format!("ALU ops take 3 operands, got {}", args.len()));
        }
        Ok(PendingInstr::Ready(Instr::Alu {
            op,
            rd: parse_reg(args[0])?,
            rs: parse_reg(args[1])?,
            rhs: parse_operand(args[2])?,
        }))
    };
    let branch = |cond: Cond, args: &[&str]| -> Result<PendingInstr, String> {
        if args.len() != 3 {
            return Err(format!("branches take 3 operands, got {}", args.len()));
        }
        Ok(PendingInstr::Branch {
            cond,
            rs: parse_reg(args[0])?,
            rhs: parse_operand(args[1])?,
            target: parse_target(args[2])?,
        })
    };

    match mnemonic {
        "li" => {
            nargs(2)?;
            Ok(PendingInstr::Ready(Instr::Li {
                rd: parse_reg(args[0])?,
                imm: parse_imm(args[1])?,
            }))
        }
        "mov" => {
            nargs(2)?;
            Ok(PendingInstr::Ready(Instr::Mov {
                rd: parse_reg(args[0])?,
                rs: parse_reg(args[1])?,
            }))
        }
        "add" => alu(AluOp::Add, &args),
        "sub" => alu(AluOp::Sub, &args),
        "mul" => alu(AluOp::Mul, &args),
        "div" => alu(AluOp::Div, &args),
        "rem" => alu(AluOp::Rem, &args),
        "and" => alu(AluOp::And, &args),
        "or" => alu(AluOp::Or, &args),
        "xor" => alu(AluOp::Xor, &args),
        "shl" => alu(AluOp::Shl, &args),
        "shr" => alu(AluOp::Shr, &args),
        "sltu" => alu(AluOp::SltU, &args),
        "slt" => alu(AluOp::Slt, &args),
        "seq" => alu(AluOp::Seq, &args),
        "ld" => {
            nargs(2)?;
            let (base, disp) = parse_mem(args[1])?;
            Ok(PendingInstr::Ready(Instr::Load {
                rd: parse_reg(args[0])?,
                base,
                disp,
            }))
        }
        "st" => {
            nargs(2)?;
            let (base, disp) = parse_mem(args[1])?;
            Ok(PendingInstr::Ready(Instr::Store {
                rs: parse_reg(args[0])?,
                base,
                disp,
            }))
        }
        "beq" => branch(Cond::Eq, &args),
        "bne" => branch(Cond::Ne, &args),
        "blt" => branch(Cond::Lt, &args),
        "bge" => branch(Cond::Ge, &args),
        "bltu" => branch(Cond::LtU, &args),
        "bgeu" => branch(Cond::GeU, &args),
        "j" => {
            nargs(1)?;
            Ok(PendingInstr::Jump(parse_target(args[0])?))
        }
        "halt" => {
            nargs(0)?;
            Ok(PendingInstr::Ready(Instr::Halt))
        }
        "compute" => {
            nargs(1)?;
            Ok(PendingInstr::Ready(Instr::Compute {
                amount: parse_operand(args[0])?,
            }))
        }
        "beginMTX" => {
            nargs(1)?;
            Ok(PendingInstr::Ready(Instr::BeginMtx {
                rvid: parse_reg(args[0])?,
            }))
        }
        "commitMTX" => {
            nargs(1)?;
            Ok(PendingInstr::Ready(Instr::CommitMtx {
                rvid: parse_reg(args[0])?,
            }))
        }
        "abortMTX" => {
            nargs(1)?;
            Ok(PendingInstr::Ready(Instr::AbortMtx {
                rvid: parse_reg(args[0])?,
            }))
        }
        "initMTX" => {
            nargs(1)?;
            Ok(PendingInstr::InitMtx(parse_target(args[0])?))
        }
        "vidreset" => {
            nargs(0)?;
            Ok(PendingInstr::Ready(Instr::VidReset))
        }
        "produce" => {
            nargs(2)?;
            Ok(PendingInstr::Ready(Instr::Produce {
                q: parse_queue(args[0])?,
                rs: parse_reg(args[1])?,
            }))
        }
        "consume" => {
            nargs(2)?;
            Ok(PendingInstr::Ready(Instr::Consume {
                rd: parse_reg(args[0])?,
                q: parse_queue(args[1])?,
            }))
        }
        "out" => {
            nargs(1)?;
            Ok(PendingInstr::Ready(Instr::Out {
                rs: parse_reg(args[0])?,
            }))
        }
        "marker" => {
            nargs(1)?;
            let id = args[0]
                .strip_prefix('#')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("expected #id, got `{}`", args[0]))?;
            Ok(PendingInstr::Ready(Instr::Marker { id }))
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn assembles_named_labels() {
        let p = assemble(
            r"
            start:
                li r1, 5
            loop: add r1, r1, -1
                bne r1, 0, loop
                j start
            ",
        )
        .unwrap();
        assert_eq!(
            p.get(2),
            Some(&Instr::Branch {
                cond: Cond::Ne,
                rs: Reg::R1,
                rhs: Operand::Imm(0),
                target: 1,
            })
        );
        assert_eq!(p.get(3), Some(&Instr::Jump { target: 0 }));
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("ld r1, 8(r2)\nst r3, -16(r4)\nld r5, (r6)").unwrap();
        assert_eq!(
            p.get(0),
            Some(&Instr::Load {
                rd: Reg::R1,
                base: Reg::R2,
                disp: 8
            })
        );
        assert_eq!(
            p.get(1),
            Some(&Instr::Store {
                rs: Reg::R3,
                base: Reg::R4,
                disp: -16
            })
        );
        assert_eq!(
            p.get(2),
            Some(&Instr::Load {
                rd: Reg::R5,
                base: Reg::R6,
                disp: 0
            })
        );
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("li r1, 0x10\nli r2, -0x10\nli r3, -7").unwrap();
        assert_eq!(
            p.get(0),
            Some(&Instr::Li {
                rd: Reg::R1,
                imm: 16
            })
        );
        assert_eq!(
            p.get(1),
            Some(&Instr::Li {
                rd: Reg::R2,
                imm: -16
            })
        );
        assert_eq!(
            p.get(2),
            Some(&Instr::Li {
                rd: Reg::R3,
                imm: -7
            })
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = assemble("; header\n\n  li r1, 1 ; trailing\n# another\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn mtx_and_queue_instructions() {
        let p = assemble(
            "beginMTX r4\nproduce q3, r1\nconsume r2, q3\ncommitMTX r4\nvidreset\nmarker #7\nhalt",
        )
        .unwrap();
        assert_eq!(p.get(0), Some(&Instr::BeginMtx { rvid: Reg::R4 }));
        assert_eq!(
            p.get(1),
            Some(&Instr::Produce {
                q: hmtx_types::QueueId(3),
                rs: Reg::R1
            })
        );
        assert_eq!(p.get(4), Some(&Instr::VidReset));
        assert_eq!(p.get(5), Some(&Instr::Marker { id: 7 }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("li r1, 1\nfrobnicate r2").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = assemble("bne r1, 0, nowhere").unwrap_err();
        assert!(e.to_string().contains("nowhere"), "{e}");
        let e = assemble("x: li r1, 1\nx: halt").unwrap_err();
        assert!(e.to_string().contains("twice"), "{e}");
    }

    #[test]
    fn round_trips_builder_programs() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.load(Reg::R2, Reg::R1, 24);
        b.alu(AluOp::SltU, Reg::R3, Reg::R2, Reg::R1);
        b.store(Reg::R3, Reg::R1, -8);
        b.branch_imm(Cond::LtU, Reg::R1, 100, head);
        b.compute(55);
        b.compute_reg(Reg::R9);
        b.out(Reg::R3);
        b.begin_mtx(Reg::R10);
        b.commit_mtx(Reg::R10);
        b.abort_mtx(Reg::R10);
        b.vid_reset();
        b.produce(hmtx_types::QueueId(2), Reg::R1);
        b.consume(Reg::R2, hmtx_types::QueueId(2));
        b.marker(3);
        b.halt();
        let p = b.build().unwrap();
        let text = p.disassemble();
        // Strip the "index:" prefixes the disassembler adds.
        let source: String = text
            .lines()
            .map(|l| l.split_once(':').unwrap().1.trim().to_string() + "\n")
            .collect();
        let reparsed = assemble(&source).unwrap();
        assert_eq!(p, reparsed);
    }
}
