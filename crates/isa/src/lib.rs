//! The mini-ISA interpreted by the HMTX reproduction's multicore simulator.
//!
//! The paper evaluates HMTX inside gem5 running Alpha binaries. What the
//! HMTX memory system actually observes, however, is only a stream of
//! labeled loads, stores, and branches. This crate defines a small RISC-like
//! instruction set that produces exactly such streams, together with the new
//! HMTX instructions from §3.1 of the paper (`beginMTX`, `commitMTX`,
//! `abortMTX`, `initMTX`) and hardware produce/consume queue operations used
//! by DSWP-style pipelines.
//!
//! Guest programs are built with [`ProgramBuilder`], which supports labels
//! and forward references:
//!
//! ```
//! use hmtx_isa::{ProgramBuilder, Reg, Cond};
//!
//! let mut b = ProgramBuilder::new();
//! let head = b.new_label();
//! b.li(Reg::R1, 0);
//! b.bind(head)?;
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.branch_imm(Cond::Lt, Reg::R1, 10, head);
//! b.halt();
//! let prog = b.build()?;
//! assert_eq!(prog.len(), 4);
//! # Ok::<(), hmtx_types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod instr;
pub mod interp;
pub mod program;

pub use asm::assemble;
pub use instr::{AluOp, Cond, Instr, Operand, Reg};
pub use interp::{
    run_reference, run_reference_with, run_serial_tm, RefState, TmCommitSnapshot, TmRefState,
};
pub use program::{Label, Program, ProgramBuilder};
