//! A reference interpreter for the mini-ISA: flat word-addressed memory, no
//! timing, no caches, no speculation. It defines the architectural
//! semantics that the full machine simulator must agree with on
//! single-threaded, non-transactional programs — the differential tests in
//! `hmtx-machine` hold the two implementations to that.
//!
//! [`run_serial_tm`] extends the reference to multi-threaded transactional
//! programs: the naive sequential TM semantics (no forwarding, no caches,
//! transactions atomic in commit order) that `hmtx-explore` uses as the
//! ground-truth oracle for every schedule the full machine can produce.

use std::collections::HashMap;

use hmtx_types::SimError;

use crate::instr::{Instr, Operand, Reg};
use crate::program::Program;

/// Final architectural state of a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefState {
    /// Register file.
    pub regs: [u64; Reg::COUNT],
    /// Written memory words (aligned byte address -> value).
    pub memory: HashMap<u64, u64>,
    /// Values emitted by `out`, in order.
    pub output: Vec<u64>,
    /// Instructions executed.
    pub steps: u64,
}

/// Runs `program` on the reference interpreter.
///
/// Timing instructions (`compute`, `marker`) are no-ops; transactional and
/// queue instructions are **not supported** (they have no single-threaded
/// flat-memory meaning) and return an error.
///
/// # Errors
///
/// Returns [`SimError::InstructionBudgetExceeded`] if `max_steps` is hit,
/// [`SimError::UnalignedAccess`] on a misaligned word access, and
/// [`SimError::BadProgram`] on unsupported instructions.
pub fn run_reference(program: &Program, max_steps: u64) -> Result<RefState, SimError> {
    run_reference_with(program, max_steps, &HashMap::new())
}

/// Like [`run_reference`], starting from the given memory image.
///
/// # Errors
///
/// See [`run_reference`].
pub fn run_reference_with(
    program: &Program,
    max_steps: u64,
    initial_memory: &HashMap<u64, u64>,
) -> Result<RefState, SimError> {
    let mut st = RefState {
        regs: [0; Reg::COUNT],
        memory: initial_memory.clone(),
        output: Vec::new(),
        steps: 0,
    };
    let mut pc = 0usize;
    while let Some(instr) = program.get(pc) {
        if st.steps >= max_steps {
            return Err(SimError::InstructionBudgetExceeded { budget: max_steps });
        }
        st.steps += 1;
        let operand = |st: &RefState, op: Operand| match op {
            Operand::Reg(r) => st.regs[r.index()],
            Operand::Imm(i) => i as u64,
        };
        match *instr {
            Instr::Li { rd, imm } => st.regs[rd.index()] = imm as u64,
            Instr::Mov { rd, rs } => st.regs[rd.index()] = st.regs[rs.index()],
            Instr::Alu { op, rd, rs, rhs } => {
                let b = operand(&st, rhs);
                st.regs[rd.index()] = op.apply(st.regs[rs.index()], b);
            }
            Instr::Load { rd, base, disp } => {
                let addr = st.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                st.regs[rd.index()] = *st.memory.get(&addr).unwrap_or(&0);
            }
            Instr::Store { rs, base, disp } => {
                let addr = st.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                st.memory.insert(addr, st.regs[rs.index()]);
            }
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                let b = operand(&st, rhs);
                if cond.eval(st.regs[rs.index()], b) {
                    pc = target;
                    continue;
                }
            }
            Instr::Jump { target } => {
                pc = target;
                continue;
            }
            Instr::Halt => break,
            Instr::Compute { .. } | Instr::Marker { .. } => {}
            Instr::Out { rs } => st.output.push(st.regs[rs.index()]),
            Instr::BeginMtx { .. }
            | Instr::CommitMtx { .. }
            | Instr::AbortMtx { .. }
            | Instr::InitMtx { .. }
            | Instr::VidReset
            | Instr::Produce { .. }
            | Instr::Consume { .. } => {
                return Err(SimError::BadProgram(format!(
                    "reference interpreter does not support `{instr}`"
                )));
            }
        }
        pc += 1;
    }
    Ok(st)
}

/// Architectural state captured right after each group commit of a
/// [`run_serial_tm`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmCommitSnapshot {
    /// The VID that just committed.
    pub vid: u16,
    /// Committed memory at that point (aligned byte address -> value).
    pub memory: HashMap<u64, u64>,
    /// Length of the committed output stream at that point.
    pub output_len: usize,
}

/// Final state of a [`run_serial_tm`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmRefState {
    /// Committed memory (aligned byte address -> value).
    pub memory: HashMap<u64, u64>,
    /// Committed output (`out` values), in commit order.
    pub output: Vec<u64>,
    /// Total instructions executed.
    pub steps: u64,
    /// Snapshot after each group commit, in commit (VID) order.
    pub commits: Vec<TmCommitSnapshot>,
}

#[derive(Debug)]
struct TmThread<'p> {
    program: &'p Program,
    regs: [u64; Reg::COUNT],
    pc: usize,
    vid: u16,
    halted: bool,
    /// Buffered transactional writes, applied atomically at commit.
    wlog: HashMap<u64, u64>,
    /// Buffered transactional `out` values, flushed at commit.
    pending_out: Vec<u64>,
}

/// The naive sequential TM reference: one thread per program, flat memory,
/// unbounded zero-latency queues, and transactions that execute
/// **atomically in commit order** — writes and `out`s inside a transaction
/// are buffered and applied only at `commitMTX`, with no uncommitted value
/// forwarding. This is the serializability ground truth: any committed
/// outcome the real machine produces under *any* schedule must match it.
///
/// Scheduling is cooperative and deterministic: at each step the runnable
/// thread with the smallest `(open VID, thread index)` runs (threads not in
/// a transaction rank last), so an open transaction runs to its commit
/// unless it blocks. A thread blocks on `consume` from an empty queue and
/// on `commitMTX` out of VID order; if every live thread is blocked the
/// run is reported as a deadlock.
///
/// # Errors
///
/// Returns [`SimError::InstructionBudgetExceeded`] when `max_steps` is hit,
/// [`SimError::UnalignedAccess`] on misaligned word accesses, and
/// [`SimError::BadProgram`] on deadlock or on instructions with no
/// sequential meaning (`abortMTX`, `vidReset`).
pub fn run_serial_tm(
    programs: &[&Program],
    max_steps: u64,
    initial_memory: &HashMap<u64, u64>,
) -> Result<TmRefState, SimError> {
    let mut threads: Vec<TmThread> = programs
        .iter()
        .map(|p| TmThread {
            program: p,
            regs: [0; Reg::COUNT],
            pc: 0,
            vid: 0,
            halted: false,
            wlog: HashMap::new(),
            pending_out: Vec::new(),
        })
        .collect();
    let mut st = TmRefState {
        memory: initial_memory.clone(),
        output: Vec::new(),
        steps: 0,
        commits: Vec::new(),
    };
    let mut queues: Vec<std::collections::VecDeque<u64>> = vec![Default::default(); 64];
    let mut last_committed: u16 = 0;

    loop {
        // A thread is blocked on an empty queue or an out-of-order commit.
        let runnable = |t: &TmThread| -> bool {
            if t.halted {
                return false;
            }
            match t.program.get(t.pc) {
                Some(Instr::Consume { q, .. }) => !queues[q.0].is_empty(),
                Some(Instr::CommitMtx { rvid }) => {
                    t.regs[rvid.index()] as u16 == last_committed.wrapping_add(1)
                }
                _ => true,
            }
        };
        let Some(i) = (0..threads.len())
            .filter(|&i| runnable(&threads[i]))
            .min_by_key(|&i| {
                let t = &threads[i];
                (if t.vid > 0 { t.vid as u32 } else { u32::MAX }, i)
            })
        else {
            if threads.iter().all(|t| t.halted) {
                return Ok(st);
            }
            return Err(SimError::BadProgram(
                "serial TM reference: all live threads blocked (deadlock)".into(),
            ));
        };
        if st.steps >= max_steps {
            return Err(SimError::InstructionBudgetExceeded { budget: max_steps });
        }
        st.steps += 1;

        let t = &mut threads[i];
        let Some(instr) = t.program.get(t.pc) else {
            t.halted = true;
            continue;
        };
        let mut next_pc = t.pc + 1;
        let operand = |regs: &[u64; Reg::COUNT], op: Operand| match op {
            Operand::Reg(r) => regs[r.index()],
            Operand::Imm(i) => i as u64,
        };
        match *instr {
            Instr::Li { rd, imm } => t.regs[rd.index()] = imm as u64,
            Instr::Mov { rd, rs } => t.regs[rd.index()] = t.regs[rs.index()],
            Instr::Alu { op, rd, rs, rhs } => {
                let b = operand(&t.regs, rhs);
                t.regs[rd.index()] = op.apply(t.regs[rs.index()], b);
            }
            Instr::Load { rd, base, disp } => {
                let addr = t.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                let v = if t.vid > 0 {
                    t.wlog.get(&addr).or_else(|| st.memory.get(&addr))
                } else {
                    st.memory.get(&addr)
                };
                t.regs[rd.index()] = *v.unwrap_or(&0);
            }
            Instr::Store { rs, base, disp } => {
                let addr = t.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                let value = t.regs[rs.index()];
                if t.vid > 0 {
                    t.wlog.insert(addr, value);
                } else {
                    st.memory.insert(addr, value);
                }
            }
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                let b = operand(&t.regs, rhs);
                if cond.eval(t.regs[rs.index()], b) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Halt => t.halted = true,
            Instr::Compute { .. } | Instr::Marker { .. } | Instr::InitMtx { .. } => {}
            Instr::Out { rs } => {
                let value = t.regs[rs.index()];
                if t.vid > 0 {
                    t.pending_out.push(value);
                } else {
                    st.output.push(value);
                }
            }
            Instr::BeginMtx { rvid } => {
                t.vid = t.regs[rvid.index()] as u16;
                t.wlog.clear();
                t.pending_out.clear();
            }
            Instr::CommitMtx { rvid } => {
                let vid = t.regs[rvid.index()] as u16;
                debug_assert_eq!(vid, last_committed.wrapping_add(1), "runnable check");
                for (addr, value) in t.wlog.drain() {
                    st.memory.insert(addr, value);
                }
                st.output.append(&mut t.pending_out);
                t.vid = 0;
                last_committed = vid;
                st.commits.push(TmCommitSnapshot {
                    vid,
                    memory: st.memory.clone(),
                    output_len: st.output.len(),
                });
            }
            Instr::AbortMtx { .. } | Instr::VidReset => {
                return Err(SimError::BadProgram(format!(
                    "serial TM reference does not support `{instr}`"
                )));
            }
            Instr::Produce { q, rs } => queues[q.0].push_back(t.regs[rs.index()]),
            Instr::Consume { rd, q } => {
                let v = queues[q.0].pop_front().expect("runnable check");
                t.regs[rd.index()] = v;
            }
        }
        t.pc = next_pc;
    }
}

fn check_aligned(addr: u64) -> Result<(), SimError> {
    // Same constraint as the machine: an 8-byte word must not cross a
    // 64-byte line; alignment to 8 guarantees that.
    if !addr.is_multiple_of(8) {
        return Err(SimError::UnalignedAccess { addr });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn reference_runs_a_loop() {
        let p = assemble(
            r"
                li r1, 0
                li r2, 0
            loop:
                add r2, r2, r1
                add r1, r1, 1
                bltu r1, 10, loop
                out r2
                halt
            ",
        )
        .unwrap();
        let st = run_reference(&p, 1_000).unwrap();
        assert_eq!(st.output, vec![45]);
        assert_eq!(st.regs[1], 10);
    }

    #[test]
    fn reference_memory_round_trips() {
        let p = assemble(
            r"
                li r1, 0x1000
                li r2, 99
                st r2, 8(r1)
                ld r3, 8(r1)
                out r3
                halt
            ",
        )
        .unwrap();
        let st = run_reference(&p, 100).unwrap();
        assert_eq!(st.output, vec![99]);
        assert_eq!(st.memory.get(&0x1008), Some(&99));
    }

    #[test]
    fn reference_rejects_transactional_programs() {
        let p = assemble("beginMTX r1\nhalt").unwrap();
        assert!(run_reference(&p, 10).is_err());
    }

    #[test]
    fn reference_detects_misalignment_and_budget() {
        let p = assemble("li r1, 3\nld r2, (r1)\nhalt").unwrap();
        assert!(matches!(
            run_reference(&p, 10),
            Err(SimError::UnalignedAccess { .. })
        ));
        let p = assemble("loop: j loop").unwrap();
        assert!(matches!(
            run_reference(&p, 10),
            Err(SimError::InstructionBudgetExceeded { .. })
        ));
    }

    #[test]
    fn serial_tm_commits_a_two_thread_handoff() {
        let t0 = assemble(
            r"
                li r10, 1
                beginMTX r10
                li r1, 0x100000
                li r2, 7
                st r2, (r1)
                li r3, 1
                produce q0, r3
                commitMTX r10
                li r3, 2
                produce q1, r3
                halt
            ",
        )
        .unwrap();
        let t1 = assemble(
            r"
                consume r9, q0
                li r10, 2
                beginMTX r10
                li r1, 0x100000
                ld r4, (r1)
                li r5, 0x100040
                add r6, r4, 1
                st r6, (r5)
                consume r9, q1
                commitMTX r10
                out r6
                halt
            ",
        )
        .unwrap();
        let st = run_serial_tm(&[&t0, &t1], 10_000, &HashMap::new()).unwrap();
        assert_eq!(st.memory.get(&0x100000), Some(&7));
        assert_eq!(st.memory.get(&0x100040), Some(&8));
        assert_eq!(st.output, vec![8]);
        assert_eq!(st.commits.len(), 2);
        // The first snapshot sees only transaction 1's writes.
        assert_eq!(st.commits[0].vid, 1);
        assert_eq!(st.commits[0].memory.get(&0x100000), Some(&7));
        assert_eq!(st.commits[0].memory.get(&0x100040), None);
        assert_eq!(st.commits[0].output_len, 0);
    }

    #[test]
    fn serial_tm_buffers_transactional_writes_until_commit() {
        // A non-transactional observer must not see the store before commit;
        // with the token produced before the commit, the oracle's scheduler
        // lets the observer read while the transaction is still open.
        let writer = assemble(
            r"
                li r10, 1
                beginMTX r10
                li r1, 0x100000
                li r2, 9
                st r2, (r1)
                produce q0, r2
                consume r3, q1
                commitMTX r10
                halt
            ",
        )
        .unwrap();
        let reader = assemble(
            r"
                consume r9, q0
                li r1, 0x100000
                ld r4, (r1)
                out r4
                produce q1, r4
                halt
            ",
        )
        .unwrap();
        let st = run_serial_tm(&[&writer, &reader], 10_000, &HashMap::new()).unwrap();
        assert_eq!(st.output, vec![0], "store must stay buffered");
        assert_eq!(st.memory.get(&0x100000), Some(&9));
    }

    #[test]
    fn serial_tm_reports_deadlock_and_rejects_aborts() {
        let p = assemble("consume r1, q0\nhalt").unwrap();
        let err = run_serial_tm(&[&p], 100, &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
        // Out-of-order commits also deadlock (the commit blocks forever).
        let p = assemble("li r10, 2\nbeginMTX r10\ncommitMTX r10\nhalt").unwrap();
        assert!(run_serial_tm(&[&p], 100, &HashMap::new()).is_err());
        let p = assemble("li r10, 1\nabortMTX r10\nhalt").unwrap();
        assert!(run_serial_tm(&[&p], 100, &HashMap::new()).is_err());
    }

    #[test]
    fn initial_memory_is_respected() {
        let mut init = HashMap::new();
        init.insert(0x2000u64, 7u64);
        let p = assemble("li r1, 0x2000\nld r2, (r1)\nout r2\nhalt").unwrap();
        let st = run_reference_with(&p, 100, &init).unwrap();
        assert_eq!(st.output, vec![7]);
    }
}
