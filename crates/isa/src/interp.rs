//! A reference interpreter for the mini-ISA: flat word-addressed memory, no
//! timing, no caches, no speculation. It defines the architectural
//! semantics that the full machine simulator must agree with on
//! single-threaded, non-transactional programs — the differential tests in
//! `hmtx-machine` hold the two implementations to that.

use std::collections::HashMap;

use hmtx_types::SimError;

use crate::instr::{Instr, Operand, Reg};
use crate::program::Program;

/// Final architectural state of a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefState {
    /// Register file.
    pub regs: [u64; Reg::COUNT],
    /// Written memory words (aligned byte address -> value).
    pub memory: HashMap<u64, u64>,
    /// Values emitted by `out`, in order.
    pub output: Vec<u64>,
    /// Instructions executed.
    pub steps: u64,
}

/// Runs `program` on the reference interpreter.
///
/// Timing instructions (`compute`, `marker`) are no-ops; transactional and
/// queue instructions are **not supported** (they have no single-threaded
/// flat-memory meaning) and return an error.
///
/// # Errors
///
/// Returns [`SimError::InstructionBudgetExceeded`] if `max_steps` is hit,
/// [`SimError::UnalignedAccess`] on a misaligned word access, and
/// [`SimError::BadProgram`] on unsupported instructions.
pub fn run_reference(program: &Program, max_steps: u64) -> Result<RefState, SimError> {
    run_reference_with(program, max_steps, &HashMap::new())
}

/// Like [`run_reference`], starting from the given memory image.
///
/// # Errors
///
/// See [`run_reference`].
pub fn run_reference_with(
    program: &Program,
    max_steps: u64,
    initial_memory: &HashMap<u64, u64>,
) -> Result<RefState, SimError> {
    let mut st = RefState {
        regs: [0; Reg::COUNT],
        memory: initial_memory.clone(),
        output: Vec::new(),
        steps: 0,
    };
    let mut pc = 0usize;
    while let Some(instr) = program.get(pc) {
        if st.steps >= max_steps {
            return Err(SimError::InstructionBudgetExceeded { budget: max_steps });
        }
        st.steps += 1;
        let operand = |st: &RefState, op: Operand| match op {
            Operand::Reg(r) => st.regs[r.index()],
            Operand::Imm(i) => i as u64,
        };
        match *instr {
            Instr::Li { rd, imm } => st.regs[rd.index()] = imm as u64,
            Instr::Mov { rd, rs } => st.regs[rd.index()] = st.regs[rs.index()],
            Instr::Alu { op, rd, rs, rhs } => {
                let b = operand(&st, rhs);
                st.regs[rd.index()] = op.apply(st.regs[rs.index()], b);
            }
            Instr::Load { rd, base, disp } => {
                let addr = st.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                st.regs[rd.index()] = *st.memory.get(&addr).unwrap_or(&0);
            }
            Instr::Store { rs, base, disp } => {
                let addr = st.regs[base.index()].wrapping_add(disp as u64);
                check_aligned(addr)?;
                st.memory.insert(addr, st.regs[rs.index()]);
            }
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                let b = operand(&st, rhs);
                if cond.eval(st.regs[rs.index()], b) {
                    pc = target;
                    continue;
                }
            }
            Instr::Jump { target } => {
                pc = target;
                continue;
            }
            Instr::Halt => break,
            Instr::Compute { .. } | Instr::Marker { .. } => {}
            Instr::Out { rs } => st.output.push(st.regs[rs.index()]),
            Instr::BeginMtx { .. }
            | Instr::CommitMtx { .. }
            | Instr::AbortMtx { .. }
            | Instr::InitMtx { .. }
            | Instr::VidReset
            | Instr::Produce { .. }
            | Instr::Consume { .. } => {
                return Err(SimError::BadProgram(format!(
                    "reference interpreter does not support `{instr}`"
                )));
            }
        }
        pc += 1;
    }
    Ok(st)
}

fn check_aligned(addr: u64) -> Result<(), SimError> {
    // Same constraint as the machine: an 8-byte word must not cross a
    // 64-byte line; alignment to 8 guarantees that.
    if !addr.is_multiple_of(8) {
        return Err(SimError::UnalignedAccess { addr });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn reference_runs_a_loop() {
        let p = assemble(
            r"
                li r1, 0
                li r2, 0
            loop:
                add r2, r2, r1
                add r1, r1, 1
                bltu r1, 10, loop
                out r2
                halt
            ",
        )
        .unwrap();
        let st = run_reference(&p, 1_000).unwrap();
        assert_eq!(st.output, vec![45]);
        assert_eq!(st.regs[1], 10);
    }

    #[test]
    fn reference_memory_round_trips() {
        let p = assemble(
            r"
                li r1, 0x1000
                li r2, 99
                st r2, 8(r1)
                ld r3, 8(r1)
                out r3
                halt
            ",
        )
        .unwrap();
        let st = run_reference(&p, 100).unwrap();
        assert_eq!(st.output, vec![99]);
        assert_eq!(st.memory.get(&0x1008), Some(&99));
    }

    #[test]
    fn reference_rejects_transactional_programs() {
        let p = assemble("beginMTX r1\nhalt").unwrap();
        assert!(run_reference(&p, 10).is_err());
    }

    #[test]
    fn reference_detects_misalignment_and_budget() {
        let p = assemble("li r1, 3\nld r2, (r1)\nhalt").unwrap();
        assert!(matches!(
            run_reference(&p, 10),
            Err(SimError::UnalignedAccess { .. })
        ));
        let p = assemble("loop: j loop").unwrap();
        assert!(matches!(
            run_reference(&p, 10),
            Err(SimError::InstructionBudgetExceeded { .. })
        ));
    }

    #[test]
    fn initial_memory_is_respected() {
        let mut init = HashMap::new();
        init.insert(0x2000u64, 7u64);
        let p = assemble("li r1, 0x2000\nld r2, (r1)\nout r2\nhalt").unwrap();
        let st = run_reference_with(&p, 100, &init).unwrap();
        assert_eq!(st.output, vec![7]);
    }
}
