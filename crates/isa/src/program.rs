//! Guest programs and the label-resolving [`ProgramBuilder`].

use std::fmt;

use hmtx_types::{QueueId, SimError};

use crate::instr::{AluOp, Cond, Instr, Operand, Reg};

/// A control-flow label handed out by [`ProgramBuilder::new_label`] and later
/// bound to an instruction position with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A fully built, label-resolved guest program.
///
/// # Examples
///
/// ```
/// use hmtx_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 42);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 2);
/// assert!(p.disassemble().contains("li r1, 42"));
/// # Ok::<(), hmtx_types::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// The instructions of the program.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at `pc`, if in range.
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// A human-readable listing of the whole program.
    pub fn disassemble(&self) -> String {
        self.disassemble_annotated(|_| None)
    }

    /// A listing with a per-instruction annotation column, e.g. the analysis
    /// CFG block id and diagnostics from a verify report (see
    /// `hmtx_analysis::VerifyReport::annotated_disassembly`). `annotate`
    /// receives each pc; `None` leaves the column blank.
    pub fn disassemble_annotated(&self, annotate: impl Fn(usize) -> Option<String>) -> String {
        let mut out = String::new();
        for (pc, i) in self.instrs.iter().enumerate() {
            match annotate(pc) {
                Some(note) => out.push_str(&format!("{pc:>5}: {i:<28} ; {note}\n")),
                None => out.push_str(&format!("{pc:>5}: {i}\n")),
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// Pending label reference inside an emitted instruction.
#[derive(Debug, Clone, Copy)]
struct Fixup {
    instr_index: usize,
    label: Label,
}

/// Incremental builder for [`Program`]s with labels and forward references.
///
/// Every emit method appends one instruction and returns `&mut self` so
/// simple sequences can be chained. Branch/jump emitters take [`Label`]s;
/// targets are resolved at [`build`](Self::build) time.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction position (where the next emit lands).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] if the label was already bound; the
    /// message names the label index and both bind sites.
    pub fn bind(&mut self, label: Label) -> Result<(), SimError> {
        let here = self.instrs.len();
        let slot = &mut self.labels[label.0];
        if let Some(first) = *slot {
            return Err(SimError::BadProgram(format!(
                "label {} bound twice: first at @{first}, again at @{here}",
                label.0
            )));
        }
        *slot = Some(here);
        Ok(())
    }

    /// Emits a raw instruction (used by higher-level helpers and tests).
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.raw(Instr::Li { rd, imm })
    }

    /// `rd <- rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.raw(Instr::Mov { rd, rs })
    }

    /// Generic ALU operation with register or immediate right-hand side.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.raw(Instr::Alu {
            op,
            rd,
            rs,
            rhs: rhs.into(),
        })
    }

    /// `rd <- rs + rt`.
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, rt)
    }

    /// `rd <- rs + imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, imm)
    }

    /// `rd <- rs - rhs`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs, rhs)
    }

    /// `rd <- rs * rhs`.
    pub fn mul(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs, rhs)
    }

    /// `rd <- rs ^ rhs`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs, rhs)
    }

    /// `rd <- rs & rhs`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, rd, rs, rhs)
    }

    /// `rd <- rs | rhs`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, rd, rs, rhs)
    }

    /// `rd <- rs << rhs`.
    pub fn shl(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shl, rd, rs, rhs)
    }

    /// `rd <- rs >> rhs`.
    pub fn shr(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, rd, rs, rhs)
    }

    /// `rd <- rs % rhs` (unsigned).
    pub fn rem(&mut self, rd: Reg, rs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs, rhs)
    }

    /// `rd <- mem[base + disp]`.
    pub fn load(&mut self, rd: Reg, base: Reg, disp: i64) -> &mut Self {
        self.raw(Instr::Load { rd, base, disp })
    }

    /// `mem[base + disp] <- rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, disp: i64) -> &mut Self {
        self.raw(Instr::Store { rs, base, disp })
    }

    /// Conditional branch `cond(rs, rt)` to `label`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, label: Label) -> &mut Self {
        self.fixups.push(Fixup {
            instr_index: self.instrs.len(),
            label,
        });
        self.raw(Instr::Branch {
            cond,
            rs,
            rhs: Operand::Reg(rt),
            target: usize::MAX,
        })
    }

    /// Conditional branch `cond(rs, imm)` to `label`.
    pub fn branch_imm(&mut self, cond: Cond, rs: Reg, imm: i64, label: Label) -> &mut Self {
        self.fixups.push(Fixup {
            instr_index: self.instrs.len(),
            label,
        });
        self.raw(Instr::Branch {
            cond,
            rs,
            rhs: Operand::Imm(imm),
            target: usize::MAX,
        })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push(Fixup {
            instr_index: self.instrs.len(),
            label,
        });
        self.raw(Instr::Jump { target: usize::MAX })
    }

    /// Stop the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }

    /// Busy the core for a constant number of cycles.
    pub fn compute(&mut self, cycles: u64) -> &mut Self {
        self.raw(Instr::Compute {
            amount: Operand::Imm(cycles as i64),
        })
    }

    /// Busy the core for `regs[rs]` cycles (data-dependent work).
    pub fn compute_reg(&mut self, rs: Reg) -> &mut Self {
        self.raw(Instr::Compute {
            amount: Operand::Reg(rs),
        })
    }

    /// `beginMTX(regs[rvid])`.
    pub fn begin_mtx(&mut self, rvid: Reg) -> &mut Self {
        self.raw(Instr::BeginMtx { rvid })
    }

    /// `commitMTX(regs[rvid])`.
    pub fn commit_mtx(&mut self, rvid: Reg) -> &mut Self {
        self.raw(Instr::CommitMtx { rvid })
    }

    /// `abortMTX(regs[rvid])`.
    pub fn abort_mtx(&mut self, rvid: Reg) -> &mut Self {
        self.raw(Instr::AbortMtx { rvid })
    }

    /// `initMTX(label)` — recovery entry point.
    pub fn init_mtx(&mut self, label: Label) -> &mut Self {
        self.fixups.push(Fixup {
            instr_index: self.instrs.len(),
            label,
        });
        self.raw(Instr::InitMtx {
            handler: usize::MAX,
        })
    }

    /// VID reset broadcast (§4.6).
    pub fn vid_reset(&mut self) -> &mut Self {
        self.raw(Instr::VidReset)
    }

    /// Push `regs[rs]` onto hardware queue `q`.
    pub fn produce(&mut self, q: QueueId, rs: Reg) -> &mut Self {
        self.raw(Instr::Produce { q, rs })
    }

    /// Pop hardware queue `q` into `rd`.
    pub fn consume(&mut self, rd: Reg, q: QueueId) -> &mut Self {
        self.raw(Instr::Consume { rd, q })
    }

    /// Append `regs[rs]` to the transaction-buffered output stream.
    pub fn out(&mut self, rs: Reg) -> &mut Self {
        self.raw(Instr::Out { rs })
    }

    /// Host-visible marker.
    pub fn marker(&mut self, id: u32) -> &mut Self {
        self.raw(Instr::Marker { id })
    }

    /// Resolves all labels and returns the finished [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] if any referenced label was never
    /// bound.
    pub fn build(mut self) -> Result<Program, SimError> {
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0].ok_or_else(|| {
                let sites: Vec<String> = self
                    .fixups
                    .iter()
                    .filter(|f| f.label == fixup.label)
                    .map(|f| format!("@{}", f.instr_index))
                    .collect();
                SimError::BadProgram(format!(
                    "label {} referenced at {} but never bound",
                    fixup.label.0,
                    sites.join(", ")
                ))
            })?;
            match &mut self.instrs[fixup.instr_index] {
                Instr::Branch { target: t, .. }
                | Instr::Jump { target: t }
                | Instr::InitMtx { handler: t } => *t = target,
                other => {
                    return Err(SimError::BadProgram(format!(
                        "fixup points at non-control instruction {other}"
                    )))
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::GeU, Reg::R1, 10, done); // forward
        b.jump(head); // backward
        b.bind(done).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 5);
        match p.get(2).unwrap() {
            Instr::Branch { target, .. } => assert_eq!(*target, 4),
            other => panic!("unexpected {other:?}"),
        }
        match p.get(3).unwrap() {
            Instr::Jump { target } => assert_eq!(*target, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    fn unbound_label_error_lists_every_reference_site() {
        let mut b = ProgramBuilder::new();
        let bound = b.new_label();
        let dangling = b.new_label();
        b.jump(dangling); // @0
        b.bind(bound).unwrap();
        b.li(Reg::R1, 1); // @1
        b.branch_imm(Cond::Ne, Reg::R1, 0, dangling); // @2
        b.jump(bound); // @3
        let msg = b.build().unwrap_err().to_string();
        assert!(msg.contains("label 1"), "{msg}");
        assert!(msg.contains("@0, @2"), "{msg}");
        assert!(msg.contains("never bound"), "{msg}");
    }

    #[test]
    fn double_bind_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l).unwrap();
        assert!(b.bind(l).is_err());
    }

    #[test]
    fn double_bind_error_names_both_sites() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.li(Reg::R1, 1);
        b.bind(l).unwrap(); // @1
        b.li(Reg::R2, 2);
        b.li(Reg::R3, 3);
        let msg = b.bind(l).unwrap_err().to_string(); // @3
        assert!(msg.contains("label 0"), "{msg}");
        assert!(msg.contains("first at @1"), "{msg}");
        assert!(msg.contains("again at @3"), "{msg}");
    }

    #[test]
    fn init_mtx_resolves_handler() {
        let mut b = ProgramBuilder::new();
        let rec = b.new_label();
        b.init_mtx(rec);
        b.halt();
        b.bind(rec).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.get(0), Some(&Instr::InitMtx { handler: 2 }));
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R2, 7).compute(100).out(Reg::R2).halt();
        let p = b.build().unwrap();
        let text = p.disassemble();
        assert!(text.contains("li r2, 7"));
        assert!(text.contains("compute 100"));
        assert!(text.contains("out r2"));
        assert!(text.contains("halt"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_program() {
        let p = ProgramBuilder::new().build().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.get(0), None);
    }

    #[test]
    fn helper_emitters_cover_alu_ops() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::R1, Reg::R2, Reg::R3)
            .sub(Reg::R1, Reg::R1, 1)
            .mul(Reg::R1, Reg::R1, 2)
            .xor(Reg::R1, Reg::R1, Reg::R2)
            .and(Reg::R1, Reg::R1, 0xff)
            .or(Reg::R1, Reg::R1, 1)
            .shl(Reg::R1, Reg::R1, 3)
            .shr(Reg::R1, Reg::R1, 3)
            .rem(Reg::R1, Reg::R1, 10);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 9);
    }
}
