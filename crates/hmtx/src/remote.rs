//! `hmtx-run --remote`: submit a workload simulation to a running
//! `hmtx-serve` server instead of simulating in-process.
//!
//! ```text
//! hmtx-run --remote HOST:PORT --workload NAME [--paradigm P] [--scale S]
//!          [--quick] [--deadline-ms N] [--faults SEED] [--fault-rate PPM]
//! ```
//!
//! The spec is the same wire-format [`JobSpec`] the server caches by
//! content key, so repeated invocations of the same command are served
//! from the cache byte-identically. Workloads are named as in the suite
//! (`130.li`, `ispell`, …— any unambiguous substring works) or as a raw
//! `suite:N` index.

use hmtx_server::{parse_response, response_type, Client};
use hmtx_types::{BenchRef, FaultSpec, JobSpec, Json, SimError, WireBase, WireParadigm, WireScale};
use hmtx_workloads::{suite, Scale};

/// Parsed `--remote` mode options.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// The job to submit.
    pub spec: JobSpec,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
}

fn bad(msg: impl Into<String>) -> SimError {
    SimError::BadProgram(msg.into())
}

/// Resolves a workload name (exact, unambiguous substring, or `suite:N`)
/// to its suite index.
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] on unknown or ambiguous names.
pub fn resolve_workload(name: &str) -> Result<u32, SimError> {
    if let Some(i) = name.strip_prefix("suite:") {
        return i.parse().map_err(|_| bad(format!("bad suite index `{i}`")));
    }
    let workloads = suite(Scale::Quick);
    let matches: Vec<(usize, &str)> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| (i, w.meta().name))
        .filter(|(_, n)| n == &name || n.contains(name))
        .collect();
    match matches.as_slice() {
        [(i, _)] => Ok(*i as u32),
        [] => Err(bad(format!(
            "unknown workload `{name}`; known: {}",
            workloads
                .iter()
                .map(|w| w.meta().name)
                .collect::<Vec<_>>()
                .join(", ")
        ))),
        many => Err(bad(format!(
            "ambiguous workload `{name}`: {}",
            many.iter()
                .map(|(_, n)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

/// Parses `--remote` mode arguments (everything after the program name;
/// the leading `--remote ADDR` included).
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] on malformed flags.
pub fn parse_remote_args<I: IntoIterator<Item = String>>(args: I) -> Result<RemoteOptions, SimError> {
    let mut it = args.into_iter();
    let mut addr: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut paradigm = WireParadigm::Paper;
    let mut scale = WireScale::Quick;
    let mut base = WireBase::Test;
    let mut deadline_ms: Option<u64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate_ppm: u32 = 200;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| bad(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--remote" => addr = Some(value("--remote")?),
            "--workload" => workload = Some(value("--workload")?),
            "--paradigm" => {
                let v = value("--paradigm")?;
                paradigm = WireParadigm::from_name(&v).map_err(|e| bad(e.to_string()))?;
            }
            "--scale" => {
                let v = value("--scale")?;
                scale = WireScale::from_name(&v).map_err(|e| bad(e.to_string()))?;
            }
            "--quick" => base = WireBase::Test,
            "--paper-config" => base = WireBase::Paper,
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                deadline_ms = Some(v.parse().map_err(|_| bad(format!("bad deadline `{v}`")))?);
            }
            "--faults" => {
                let v = value("--faults")?;
                fault_seed = Some(v.parse().map_err(|_| bad(format!("bad seed `{v}`")))?);
            }
            "--fault-rate" => {
                let v = value("--fault-rate")?;
                fault_rate_ppm = v.parse().map_err(|_| bad(format!("bad fault rate `{v}`")))?;
            }
            other => {
                return Err(bad(format!(
                    "unknown --remote mode flag `{other}` \
                     (usage: hmtx-run --remote HOST:PORT --workload NAME [--paradigm P] \
                     [--scale quick|standard|stress] [--quick|--paper-config] \
                     [--deadline-ms N] [--faults SEED] [--fault-rate PPM])"
                )))
            }
        }
    }
    let addr = addr.ok_or_else(|| bad("--remote needs an address"))?;
    let workload = workload.ok_or_else(|| bad("--remote mode needs --workload NAME"))?;
    let mut spec = JobSpec::new(
        BenchRef::Suite(resolve_workload(&workload)?),
        paradigm,
        scale,
        base,
    );
    if let Some(seed) = fault_seed {
        spec.fault = Some(FaultSpec {
            seed,
            rate_ppm: fault_rate_ppm,
        });
    }
    Ok(RemoteOptions {
        addr,
        spec,
        deadline_ms,
    })
}

/// Submits the job and renders a human-readable summary of the response.
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] with the failure detail on I/O errors
/// or non-`result` responses.
pub fn run_remote(opts: &RemoteOptions) -> Result<String, SimError> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| bad(format!("connecting {}: {e}", opts.addr)))?;
    let response = client
        .job_with_retry(&opts.spec, opts.deadline_ms, 60)
        .map_err(|e| bad(format!("request failed: {e}")))?;
    match response_type(&response).as_deref() {
        Some("result") => {
            let v = parse_response(&response).map_err(bad)?;
            let report = v.get("report").ok_or_else(|| bad("result without report"))?;
            let field = |name: &str| report.get(name).and_then(Json::as_u64).unwrap_or(0);
            let mut summary = format!(
                "key:     {}\nlabel:   {}\ncycles:  {}\ninstructions: {}\nrecoveries: {}\n",
                v.get("key").and_then(Json::as_str).unwrap_or("?"),
                report.get("label").and_then(Json::as_str).unwrap_or("?"),
                field("cycles"),
                field("instructions"),
                field("recoveries"),
            );
            summary.push_str(&render_hytm_summary(report));
            summary.push_str(&format!("\nreport:\n{}", report.pretty()));
            Ok(summary)
        }
        Some("draining") => Err(bad("server is draining; retry against another instance")),
        Some("busy") => Err(bad("server is at capacity (busy after retries)")),
        Some("timeout") => Err(bad(
            "deadline expired; the job is still running server-side — retry to hit its cache",
        )),
        Some("error") => {
            let detail = parse_response(&response)
                .ok()
                .and_then(|v| v.get("message").and_then(Json::as_str).map(String::from))
                .unwrap_or_else(|| "unknown server error".into());
            Err(bad(format!("server error: {detail}")))
        }
        other => Err(bad(format!("unexpected response type {other:?}"))),
    }
}

/// The hybrid-mode recovery summary lines: the fast/slow-path split and
/// every demotion classified by cause (capacity, vid-exhaustion,
/// abort-storm, injected-fault). Empty for non-`hytm` reports, whose
/// `hytm` block is `null`.
#[must_use]
pub fn render_hytm_summary(report: &Json) -> String {
    let Some(mix) = report.get("hytm") else {
        return String::new();
    };
    if matches!(mix, Json::Null) {
        return String::new();
    }
    let n = |name: &str| mix.get(name).and_then(Json::as_u64).unwrap_or(0);
    let causes = mix.get("demotions_by_cause").map_or_else(String::new, |by| {
        ["capacity", "vid-exhaustion", "abort-storm", "injected-fault"]
            .iter()
            .map(|c| format!("{c}={}", by.get(c).and_then(Json::as_u64).unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" ")
    });
    format!(
        "path mix: {} fast / {} slow commits\n\
         demotions: {} ({causes})\n\
         fast retries: {} ({} backoff cycles), storm serializations: {}\n",
        n("fast_commits"),
        n("slow_commits"),
        n("demotions"),
        n("fast_retries"),
        n("backoff_cycles"),
        n("storm_serializations"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_resolve_exactly_and_by_substring() {
        assert_eq!(resolve_workload("suite:3").unwrap(), 3);
        let li = resolve_workload("130.li").unwrap();
        assert_eq!(resolve_workload("li").unwrap(), li);
        assert!(resolve_workload("nope").is_err());
    }

    #[test]
    fn remote_args_build_a_spec() {
        let opts = parse_remote_args(
            [
                "--remote",
                "127.0.0.1:7870",
                "--workload",
                "ispell",
                "--paradigm",
                "seq",
                "--deadline-ms",
                "2500",
                "--faults",
                "9",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7870");
        assert_eq!(opts.spec.paradigm, WireParadigm::Sequential);
        assert_eq!(opts.deadline_ms, Some(2500));
        let fault = opts.spec.fault.unwrap();
        assert_eq!((fault.seed, fault.rate_ppm), (9, 200));
        assert!(matches!(opts.spec.benchmark, BenchRef::Suite(_)));
    }

    #[test]
    fn remote_args_reject_nonsense() {
        for bad_args in [
            vec!["--remote", "addr"],                       // no workload
            vec!["--workload", "li"],                       // no addr
            vec!["--remote", "a", "--workload", "li", "x"], // stray flag
            vec!["--remote", "a", "--workload", "li", "--paradigm", "warp"],
        ] {
            let args = bad_args.into_iter().map(String::from);
            assert!(parse_remote_args(args).is_err());
        }
    }

    #[test]
    fn hytm_summary_prints_classified_demotion_causes() {
        let report = Json::obj(vec![(
            "hytm",
            Json::obj(vec![
                ("fast_commits", Json::Uint(17)),
                ("slow_commits", Json::Uint(3)),
                ("demotions", Json::Uint(3)),
                (
                    "demotions_by_cause",
                    Json::obj(vec![
                        ("capacity", Json::Uint(2)),
                        ("vid-exhaustion", Json::Uint(0)),
                        ("abort-storm", Json::Uint(0)),
                        ("injected-fault", Json::Uint(1)),
                    ]),
                ),
                ("fast_retries", Json::Uint(5)),
                ("backoff_cycles", Json::Uint(640)),
                ("storm_serializations", Json::Uint(1)),
            ]),
        )]);
        let summary = render_hytm_summary(&report);
        assert!(summary.contains("17 fast / 3 slow"), "{summary}");
        assert!(summary.contains("capacity=2"), "{summary}");
        assert!(summary.contains("injected-fault=1"), "{summary}");
        assert!(summary.contains("storm serializations: 1"), "{summary}");
        // Non-hytm reports stay silent.
        let plain = Json::obj(vec![("hytm", Json::Null)]);
        assert_eq!(render_hytm_summary(&plain), "");
        assert_eq!(render_hytm_summary(&Json::obj(Vec::<(&str, Json)>::new())), "");
    }

    #[test]
    fn run_remote_reports_connection_failures() {
        // A port from the discard range that nothing listens on.
        let opts = RemoteOptions {
            addr: "127.0.0.1:9".into(),
            spec: JobSpec::new(
                BenchRef::Suite(0),
                WireParadigm::Paper,
                WireScale::Quick,
                WireBase::Test,
            ),
            deadline_ms: None,
        };
        let err = run_remote(&opts).unwrap_err();
        assert!(err.to_string().contains("connecting"), "{err}");
    }
}
