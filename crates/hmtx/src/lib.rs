//! Facade crate for the HMTX (Hardware Multithreaded Transactions,
//! ASPLOS 2018) reproduction: re-exports the full public API of the
//! workspace so downstream users can depend on a single crate.
//!
//! # Examples
//!
//! Run a workload PS-DSWP on the simulated 4-core HMTX machine:
//!
//! ```
//! use hmtx::runtime::{run_loop, Paradigm};
//! use hmtx::types::MachineConfig;
//! use hmtx::workloads::{suite, Scale};
//!
//! let ispell = &suite(Scale::Quick)[7];
//! let (machine, report) = run_loop(
//!     Paradigm::PsDswp,
//!     ispell.as_ref(),
//!     &MachineConfig::test_default(),
//!     50_000_000,
//! )?;
//! assert!(report.cycles > 0);
//! assert!(machine.mem().stats().commits > 0);
//! # Ok::<(), hmtx::types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod remote;
pub mod vcli;

/// Shared vocabulary types and configuration ([`hmtx_types`]).
pub use hmtx_types as types;

/// Static MTX well-formedness and race analysis ([`hmtx_analysis`]).
pub use hmtx_analysis as analysis;

/// The mini-ISA and program builder ([`hmtx_isa`]).
pub use hmtx_isa as isa;

/// Versioned caches, bus, memory ([`hmtx_mem`]).
pub use hmtx_mem as mem;

/// The HMTX coherence protocol — the paper's contribution ([`hmtx_core`]).
pub use hmtx_core as core;

/// The multicore machine simulator ([`hmtx_machine`]).
pub use hmtx_machine as machine;

/// Parallelization paradigms and the run harness ([`hmtx_runtime`]).
pub use hmtx_runtime as runtime;

/// The SMTX software baseline ([`hmtx_smtx`]).
pub use hmtx_smtx as smtx;

/// The 8-benchmark workload suite ([`hmtx_workloads`]).
pub use hmtx_workloads as workloads;

/// The McPAT-lite area/power/energy model ([`hmtx_power`]).
pub use hmtx_power as power;
