//! `hmtx-verify`: statically verify mini-ISA program sets (MTX protocol,
//! register dataflow, queue matching/deadlock, speculative-store escape)
//! without running them.
//!
//! ```text
//! hmtx-verify [--json] [--disasm] thread0.asm [thread1.asm ...]
//! hmtx-verify --all-workloads [--scale quick|standard|stress] [--json]
//! ```
//!
//! Exits 0 when clean, 1 when any diagnostic is reported, 2 on bad
//! arguments or assembly errors.

use hmtx::vcli::{parse_args, run};

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            print!("{}", report.output);
            std::process::exit(report.exit_code());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
