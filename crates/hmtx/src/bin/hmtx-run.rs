//! `hmtx-run`: assemble and run guest programs on the simulated HMTX
//! machine. One assembly file per hardware thread.
//!
//! ```text
//! hmtx-run [--cores N] [--trace N] [--budget N] [--quick]
//!          [--mem addr=value]... [--dump addr]...
//!          [--replay seed.json]
//!          thread0.asm [thread1.asm ...]
//! ```
//!
//! `--replay` pins the scheduler to a `ScheduleSeed` divergence list (as
//! written by `hmtx-explore` into `tests/corpus/`), reproducing one explored
//! interleaving byte-deterministically instead of the default min-clock
//! schedule.
//!
//! With `--remote HOST:PORT`, submits a suite-workload job to a running
//! `hmtx-serve` server instead of simulating locally (see `hmtx::remote`):
//!
//! ```text
//! hmtx-run --remote HOST:PORT --workload NAME [--paradigm P] [--scale S]
//! ```

use hmtx::cli::{parse_args, run};
use hmtx::remote::{parse_remote_args, run_remote};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--remote") {
        match parse_remote_args(args).and_then(|opts| run_remote(&opts)) {
            Ok(summary) => {
                println!("{summary}");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            println!("outcome: {}", report.outcome);
            println!("cycles:  {}", report.cycles);
            if !report.outputs.is_empty() {
                println!("output:  {:?}", report.outputs);
            }
            for (addr, value) in &report.dumps {
                println!("mem[0x{addr:x}] = {value}");
            }
            println!("\n{}", report.stats);
            if !report.trace.is_empty() {
                println!("\ntrace:\n{}", report.trace);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
