//! `hmtx-run`: assemble and run guest programs on the simulated HMTX
//! machine. One assembly file per hardware thread.
//!
//! ```text
//! hmtx-run [--cores N] [--trace N] [--budget N] [--quick]
//!          [--mem addr=value]... [--dump addr]...
//!          thread0.asm [thread1.asm ...]
//! ```

use hmtx::cli::{parse_args, run};

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            println!("outcome: {}", report.outcome);
            println!("cycles:  {}", report.cycles);
            if !report.outputs.is_empty() {
                println!("output:  {:?}", report.outputs);
            }
            for (addr, value) in &report.dumps {
                println!("mem[0x{addr:x}] = {value}");
            }
            println!("\n{}", report.stats);
            if !report.trace.is_empty() {
                println!("\ntrace:\n{}", report.trace);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
