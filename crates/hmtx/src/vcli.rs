//! Implementation of the `hmtx-verify` command-line tool: statically verify
//! assembled program sets, or every shipped workload emitter, with
//! `hmtx-analysis`.
//!
//! Two modes:
//!
//! * `hmtx-verify thread0.asm [thread1.asm ...]` — assemble the files (one
//!   per core, in order) and run the full rule set over them as one set.
//! * `hmtx-verify --all-workloads [--scale quick|standard|stress]` — emit
//!   all 8 benchmark workloads under every HMTX paradigm (plus the
//!   single-transaction recovery shape) and every SMTX read/write-set mode,
//!   and verify each generated set. This is the CI gate wired into
//!   `scripts/tier1.sh`: a diagnostic in freshly emitted code is always a
//!   bug, either in the emitter or in the analyzer.
//!
//! Exit status (via [`VcliReport::exit_code`]): 0 clean, 1 diagnostics
//! found; the binary maps argument/assembly errors to 2.

use hmtx_analysis::{verify_set, VerifyReport};
use hmtx_isa::{assemble, Program};
use hmtx_runtime::{build_paradigm, emit, squeezed_config, verify_generated, LoopEnv, Paradigm};
use hmtx_smtx::emit::build_smtx_pipeline;
use hmtx_smtx::RwSetMode;
use hmtx_types::{MachineConfig, SimError};
use hmtx_workloads::{suite, Scale};

/// Every paradigm `--all-workloads` emits, in report order.
const PARADIGMS: [Paradigm; 5] = [
    Paradigm::Sequential,
    Paradigm::Doall,
    Paradigm::Doacross,
    Paradigm::Dswp,
    Paradigm::PsDswp,
];

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Assembly source text, one entry per core (core `i` = file `i`).
    pub programs: Vec<String>,
    /// Verify every workload emitter instead of assembly files.
    pub all_workloads: bool,
    /// Workload scale for `--all-workloads`.
    pub scale: Scale,
    /// Emit the report as JSON.
    pub json: bool,
    /// Also print the CFG-annotated disassembly of each verified program.
    pub disasm: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            programs: Vec::new(),
            all_workloads: false,
            scale: Scale::Quick,
            json: false,
            disasm: false,
        }
    }
}

/// Outcome of a verify run, pre-rendered for printing.
#[derive(Debug)]
pub struct VcliReport {
    /// Rendered output (text or JSON).
    pub output: String,
    /// Total diagnostics across all verified sets.
    pub diagnostics: usize,
    /// How many of them are errors.
    pub errors: usize,
}

impl VcliReport {
    /// Process exit code: 0 when clean, 1 when any diagnostic was reported.
    pub fn exit_code(&self) -> i32 {
        if self.diagnostics == 0 {
            0
        } else {
            1
        }
    }
}

/// Parses CLI arguments (everything after the program name).
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] on malformed flags or missing inputs.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, SimError> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    let bad = |msg: String| SimError::BadProgram(msg);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-workloads" => opts.all_workloads = true,
            "--json" => opts.json = true,
            "--disasm" => opts.disasm = true,
            "--scale" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--scale needs quick|standard|stress".into()))?;
                opts.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "standard" => Scale::Standard,
                    "stress" => Scale::Stress,
                    other => return Err(bad(format!("bad scale `{other}`"))),
                };
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| bad(format!("cannot read `{path}`: {e}")))?;
                opts.programs.push(text);
            }
        }
    }
    if opts.programs.is_empty() && !opts.all_workloads {
        return Err(bad(
            "usage: hmtx-verify [--json] [--disasm] thread0.asm [thread1.asm ...]\n       \
             hmtx-verify --all-workloads [--scale quick|standard|stress] [--json]"
                .into(),
        ));
    }
    if !opts.programs.is_empty() && opts.all_workloads {
        return Err(bad(
            "--all-workloads and assembly files are mutually exclusive".into(),
        ));
    }
    Ok(opts)
}

/// One verified set: a label plus its report (and the programs, for
/// `--disasm`).
struct SetResult {
    label: String,
    report: VerifyReport,
    programs: Vec<Program>,
}

/// Runs the configured verification.
///
/// # Errors
///
/// Returns [`SimError`] on assembly failures; diagnostics are *not* errors
/// (they are the tool's output).
pub fn run(opts: &Options) -> Result<VcliReport, SimError> {
    let results = if opts.all_workloads {
        verify_all_workloads(opts.scale)?
    } else {
        let programs: Vec<Program> = opts
            .programs
            .iter()
            .map(|text| assemble(text))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Program> = programs.iter().collect();
        vec![SetResult {
            label: format!("{} program(s)", programs.len()),
            report: verify_set(&refs),
            programs,
        }]
    };

    let diagnostics: usize = results.iter().map(|r| r.report.diagnostics.len()).sum();
    let errors: usize = results.iter().map(|r| r.report.error_count()).sum();
    let output = if opts.json {
        render_json(&results)
    } else {
        render_text(&results, opts.disasm)
    };
    Ok(VcliReport {
        output,
        diagnostics,
        errors,
    })
}

/// Emits and verifies every shipped workload under every paradigm and SMTX
/// mode, mirroring how `runtime::run_loop` / `smtx::run_smtx` size the
/// worker pools from the paper-default machine configuration.
fn verify_all_workloads(scale: Scale) -> Result<Vec<SetResult>, SimError> {
    let cfg = MachineConfig::paper_default();
    let max_vid = cfg.hmtx.max_vid().0;
    let mut results = Vec::new();
    for workload in suite(scale) {
        let name = workload.meta().name;
        let body = workload.as_ref();
        for paradigm in PARADIGMS {
            let workers = match paradigm {
                Paradigm::Sequential | Paradigm::Dswp => 1,
                Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
                Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
            };
            let env = LoopEnv::new(max_vid, workers).with_pipeline_window(cfg.pipeline_window);
            let generated = build_paradigm(paradigm, body, &env, 1)?;
            results.push(SetResult {
                label: format!("{name}/{}", paradigm.name()),
                report: verify_generated(&generated),
                programs: generated
                    .threads
                    .iter()
                    .map(|t| (*t.program).clone())
                    .collect(),
            });
        }
        // The recovery ladder's single-transaction shape.
        {
            let env = LoopEnv::new(max_vid, 1).with_pipeline_window(cfg.pipeline_window);
            let generated = emit::build_single_tx(body, &env, 1)?;
            results.push(SetResult {
                label: format!("{name}/single-tx"),
                report: verify_generated(&generated),
                programs: generated
                    .threads
                    .iter()
                    .map(|t| (*t.program).clone())
                    .collect(),
            });
        }
        // The HyTM fast path: the workload's own paradigm emitted with the
        // VID-exhaustion watchdog armed, exactly as `smtx::hytm::run_hytm`
        // builds it (the watchdog's sentinel-abort escape is the idiom the
        // analyzer's `mtx` pass resolves via constant propagation).
        {
            let mut base = cfg.clone();
            if !base.hytm.enabled {
                base.hytm = hmtx_types::HytmConfig::paper_default();
            }
            let paradigm = workload.meta().paradigm;
            let workers = match paradigm {
                Paradigm::Sequential | Paradigm::Dswp => 1,
                Paradigm::Doall | Paradigm::Doacross => base.num_cores,
                Paradigm::PsDswp => base.num_cores.saturating_sub(1).max(1),
            };
            let (run_cfg, hytm_max_vid) = squeezed_config(&base);
            let env = LoopEnv::new(hytm_max_vid, workers)
                .with_pipeline_window(run_cfg.pipeline_window)
                .with_vid_watchdog(run_cfg.hytm.watchdog_spins);
            let generated = build_paradigm(paradigm, body, &env, 1)?;
            results.push(SetResult {
                label: format!("{name}/hytm-{}", paradigm.name()),
                report: verify_generated(&generated),
                programs: generated
                    .threads
                    .iter()
                    .map(|t| (*t.program).clone())
                    .collect(),
            });
        }
        for mode in [RwSetMode::Minimal, RwSetMode::Substantial, RwSetMode::Maximal] {
            let workers = cfg.num_cores.saturating_sub(2).max(1);
            let env = LoopEnv::new(max_vid, workers);
            let generated = build_smtx_pipeline(body, &env, &cfg.smtx, mode)?;
            results.push(SetResult {
                label: format!("{name}/smtx-{}", mode.name()),
                report: verify_generated(&generated),
                programs: generated
                    .threads
                    .iter()
                    .map(|t| (*t.program).clone())
                    .collect(),
            });
        }
    }
    Ok(results)
}

fn render_text(results: &[SetResult], disasm: bool) -> String {
    let mut out = String::new();
    for r in results {
        if r.report.is_clean() {
            out.push_str(&format!("OK   {}\n", r.label));
        } else {
            out.push_str(&format!(
                "FAIL {} ({} error(s), {} warning(s))\n",
                r.label,
                r.report.error_count(),
                r.report.warning_count()
            ));
            for line in r.report.render_text().lines() {
                out.push_str(&format!("     {line}\n"));
            }
        }
        if disasm {
            for (core, p) in r.programs.iter().enumerate() {
                out.push_str(&format!("--- {} core {core} ---\n", r.label));
                out.push_str(&r.report.annotated_disassembly(core, p));
            }
        }
    }
    let total: usize = results.iter().map(|r| r.report.diagnostics.len()).sum();
    out.push_str(&format!(
        "{} set(s) verified, {} diagnostic(s)\n",
        results.len(),
        total
    ));
    out
}

fn render_json(results: &[SetResult]) -> String {
    let body: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"set\":\"{}\",\"report\":{}}}",
                r.label,
                r.report.render_json()
            )
        })
        .collect();
    format!("{{\"sets\":[{}]}}\n", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_wants_input() {
        let err = parse_args(Vec::<String>::new()).unwrap_err();
        assert!(err.to_string().contains("usage"));
        let err = parse_args(vec!["--scale".to_string()]).unwrap_err();
        assert!(err.to_string().contains("--scale"));
        let err = parse_args(vec!["--scale".to_string(), "huge".to_string()]).unwrap_err();
        assert!(err.to_string().contains("bad scale"));
        let opts = parse_args(vec![
            "--all-workloads".to_string(),
            "--scale".to_string(),
            "standard".to_string(),
            "--json".to_string(),
        ])
        .unwrap();
        assert!(opts.all_workloads);
        assert!(opts.json);
        assert_eq!(opts.scale, Scale::Standard);
    }

    #[test]
    fn clean_program_set_exits_zero() {
        let opts = Options {
            programs: vec![
                "li r1, 1\nproduce q0, r1\nhalt".to_string(),
                "consume r2, q0\nout r2\nhalt".to_string(),
            ],
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.exit_code(), 0, "{}", report.output);
        assert!(report.output.contains("OK"), "{}", report.output);
    }

    #[test]
    fn broken_program_exits_one_with_rule_in_output() {
        let opts = Options {
            programs: vec!["li r1, 1\nbeginMTX r1\nhalt".to_string()],
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.exit_code(), 1);
        assert!(report.errors >= 1);
        assert!(
            report.output.contains("mtx-halt-speculative"),
            "{}",
            report.output
        );
    }

    #[test]
    fn json_mode_renders_machine_readable_report() {
        let opts = Options {
            programs: vec!["li r1, 1\nbeginMTX r1\nhalt".to_string()],
            json: true,
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert!(report.output.starts_with("{\"sets\":["), "{}", report.output);
        assert!(
            report.output.contains("\"rule\":\"mtx-halt-speculative\""),
            "{}",
            report.output
        );
    }

    #[test]
    fn disasm_mode_annotates_blocks() {
        let opts = Options {
            programs: vec!["li r1, 1\nhalt".to_string()],
            disasm: true,
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert!(report.output.contains("; B0"), "{}", report.output);
    }
}
