//! Implementation of the `hmtx-run` command-line tool: assemble one guest
//! program per hardware thread and run them on the simulated HMTX machine.

use std::sync::Arc;

use hmtx_isa::assemble;
use hmtx_machine::{Machine, MinClock, ReplayPolicy, RunEvent, SchedulePolicy, ScheduleSeed, ThreadContext};
use hmtx_types::{Addr, FaultConfig, Json, MachineConfig, SeedBug, SimError, ThreadId, Vid};

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Assembly source text, one entry per thread (thread `i` on core `i`).
    pub programs: Vec<String>,
    /// Core count (defaults to the number of programs, minimum 2).
    pub cores: Option<usize>,
    /// Initial memory words, `(addr, value)`.
    pub init: Vec<(u64, u64)>,
    /// Words to dump (committed view) after the run.
    pub dump: Vec<u64>,
    /// Protocol trace capacity (0 = off).
    pub trace: usize,
    /// Instruction budget.
    pub budget: u64,
    /// Use the small test configuration instead of Table 2's.
    pub quick: bool,
    /// Deterministic fault-injection seed (`None` = no injection).
    pub fault_seed: Option<u64>,
    /// Fault probability per decision point, in parts per million.
    pub fault_rate_ppm: u32,
    /// Path to a `ScheduleSeed` JSON file (`hmtx-explore` corpus format):
    /// the run replays that schedule instead of min-clock.
    pub replay: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            programs: Vec::new(),
            cores: None,
            init: Vec::new(),
            dump: Vec::new(),
            trace: 0,
            budget: 100_000_000,
            quick: false,
            fault_seed: None,
            fault_rate_ppm: 200,
            replay: None,
        }
    }
}

/// Result of a CLI run, pre-rendered for printing.
#[derive(Debug)]
pub struct CliReport {
    /// How the run ended.
    pub outcome: String,
    /// Completion cycle.
    pub cycles: u64,
    /// Committed program output (`out` instructions).
    pub outputs: Vec<u64>,
    /// `(addr, committed value)` for each requested dump.
    pub dumps: Vec<(u64, u64)>,
    /// Rendered statistics block.
    pub stats: String,
    /// Rendered protocol trace (empty if tracing off).
    pub trace: String,
}

/// Parses CLI arguments (everything after the program name).
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] on malformed flags.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, SimError> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    let bad = |msg: String| SimError::BadProgram(msg);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cores" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--cores needs a value".into()))?;
                opts.cores = Some(
                    v.parse()
                        .map_err(|_| bad(format!("bad core count `{v}`")))?,
                );
            }
            "--trace" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--trace needs a value".into()))?;
                opts.trace = v
                    .parse()
                    .map_err(|_| bad(format!("bad trace capacity `{v}`")))?;
            }
            "--budget" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--budget needs a value".into()))?;
                opts.budget = v.parse().map_err(|_| bad(format!("bad budget `{v}`")))?;
            }
            "--mem" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--mem needs addr=value".into()))?;
                let (a, val) = v
                    .split_once('=')
                    .ok_or_else(|| bad(format!("--mem wants addr=value, got `{v}`")))?;
                opts.init.push((parse_u64(a)?, parse_u64(val)?));
            }
            "--dump" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--dump needs an address".into()))?;
                opts.dump.push(parse_u64(&v)?);
            }
            "--quick" => opts.quick = true,
            "--faults" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--faults needs a seed".into()))?;
                opts.fault_seed = Some(parse_u64(&v)?);
            }
            "--fault-rate" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--fault-rate needs parts-per-million".into()))?;
                opts.fault_rate_ppm = v
                    .parse()
                    .map_err(|_| bad(format!("bad fault rate `{v}`")))?;
            }
            "--replay" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--replay needs a schedule seed file".into()))?;
                opts.replay = Some(v);
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| bad(format!("cannot read `{path}`: {e}")))?;
                opts.programs.push(text);
            }
        }
    }
    // `ops` replay seeds name their kernel, so `--replay` alone is a
    // complete invocation; assembly programs are only mandatory without it.
    if opts.programs.is_empty() && opts.replay.is_none() {
        return Err(bad(
            "usage: hmtx-run [--cores N] [--trace N] [--budget N] [--quick] \
             [--faults SEED] [--fault-rate PPM] [--replay SEED.json] \
             [--mem addr=value]... [--dump addr]... thread0.asm [thread1.asm ...]"
                .into(),
        ));
    }
    Ok(opts)
}

/// Replays an `"ops"` schedule seed: the named op kernel (a hand-written
/// corpus kernel or an `hmtx-model` model kernel) re-executed in the stored
/// order. Model-family kernels replay under the checker's strict
/// prefix semantics ([`hmtx_explore::execute_order_checked`], invariants and
/// the serializability oracle evaluated after every step); corpus kernels
/// replay under the explorer's original subsequence semantics. Any violation
/// surfaces as an error carrying the violated rule, so the process exits
/// nonzero — exactly what a lowered counterexample should do.
fn replay_ops_seed(seed: &ScheduleSeed) -> Result<CliReport, SimError> {
    let bad = |msg: String| SimError::BadProgram(msg);
    let kernel = hmtx_explore::resolve_kernel(&seed.name)
        .ok_or_else(|| bad(format!("unknown op kernel `{}`", seed.name)))?;
    let seed_bug = match &seed.seed_bug {
        None => None,
        Some(name) => Some(
            SeedBug::from_name(name).ok_or_else(|| bad(format!("unknown seed bug `{name}`")))?,
        ),
    };
    let strict = hmtx_types::ModelCheckConfig::parse_kernel_name(&seed.name).is_some();
    let outcome = if strict {
        hmtx_explore::execute_order_checked(&kernel, &seed.order, seed_bug)
    } else {
        hmtx_explore::opexplore::execute_order(&kernel, &seed.order, seed_bug)
    };
    if let Some(f) = &outcome.failure {
        return Err(SimError::Replay(format!(
            "ops replay of `{}` violated [{}]: {}",
            seed.name,
            f.rule(),
            f.detail
        )));
    }
    let mut stats = format!(
        "kernel: {} ({} ops over {} transactions)\nsemantics: {}\n\
         replayed ops: {}\ncommitted transactions: {}",
        seed.name,
        kernel.len(),
        kernel.txs.len(),
        if strict {
            "strict prefix (model checker)"
        } else {
            "subsequence (explorer corpus)"
        },
        seed.order.len(),
        outcome.committed,
    );
    if let Some(cause) = &outcome.misspec {
        stats.push_str(&format!("\nmisspeculation: {cause}"));
    }
    if !seed.note.is_empty() {
        stats.push_str(&format!("\nnote: {}", seed.note));
    }
    Ok(CliReport {
        outcome: match &outcome.misspec {
            Some(cause) => format!("ops replay misspeculated ({cause}), invariants clean"),
            None => "ops replay clean".to_string(),
        },
        cycles: 0,
        outputs: Vec::new(),
        dumps: Vec::new(),
        stats,
        trace: String::new(),
    })
}

fn parse_u64(s: &str) -> Result<u64, SimError> {
    let s = s.trim();
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    v.map_err(|_| SimError::BadProgram(format!("bad number `{s}`")))
}

/// Assembles and runs the configured programs.
///
/// # Errors
///
/// Returns [`SimError`] on assembly failures or guest-program bugs.
pub fn run(opts: &Options) -> Result<CliReport, SimError> {
    let bad = |msg: String| SimError::BadProgram(msg);
    let schedule = match &opts.replay {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| bad(format!("cannot read `{path}`: {e}")))?;
            let doc = Json::parse(&text).map_err(|e| bad(format!("`{path}`: {e}")))?;
            let seed = ScheduleSeed::from_json(&doc)?;
            match seed.kind.as_str() {
                // Op-kernel seeds (the `hmtx-explore` op corpus and
                // `hmtx-model` counterexamples) carry their whole program:
                // replay them directly, no assembly involved.
                "ops" => return replay_ops_seed(&seed),
                "machine" => {}
                other => {
                    return Err(bad(format!(
                        "`{path}` is a `{other}` seed; hmtx-run replays \
                         `machine` and `ops` seeds"
                    )));
                }
            }
            Some(seed)
        }
    };
    if opts.programs.is_empty() {
        return Err(bad(
            "replaying a `machine` seed needs the original assembly programs".into(),
        ));
    }
    let mut cfg = if opts.quick {
        MachineConfig::test_default()
    } else {
        MachineConfig::paper_default()
    };
    cfg.num_cores = opts.cores.unwrap_or_else(|| opts.programs.len().max(2));
    if let Some(seed) = opts.fault_seed {
        cfg.faults = Some(FaultConfig::chaos(seed, opts.fault_rate_ppm));
    }
    if let Some(seed) = &schedule {
        if let Some(name) = &seed.seed_bug {
            cfg.hmtx.seed_bug = Some(
                SeedBug::from_name(name)
                    .ok_or_else(|| bad(format!("unknown seed bug `{name}`")))?,
            );
        }
    }
    if cfg.num_cores < opts.programs.len() {
        return Err(SimError::BadProgram(format!(
            "{} programs need at least that many cores (got --cores {})",
            opts.programs.len(),
            cfg.num_cores
        )));
    }

    // An invalid geometry (e.g. a non-power-of-two set count) surfaces as a
    // diagnostic on stderr and a nonzero exit, not a panic.
    let mut machine = Machine::try_new(cfg)?;
    if opts.trace > 0 {
        machine.mem_mut().set_trace_capacity(opts.trace);
    }
    for (addr, value) in &opts.init {
        machine
            .mem_mut()
            .memory_mut()
            .write_word(Addr(*addr), *value);
    }
    for (i, text) in opts.programs.iter().enumerate() {
        let program = Arc::new(assemble(text)?);
        machine.load_thread(i, ThreadContext::new(ThreadId(i), program));
    }

    let mut policy: Box<dyn SchedulePolicy> = match &schedule {
        Some(seed) => Box::new(ReplayPolicy::from_seed(seed)),
        None => Box::new(MinClock),
    };
    let outcome = match machine.run_with_policy(opts.budget, policy.as_mut())? {
        RunEvent::AllHalted => "all threads halted".to_string(),
        RunEvent::Misspeculation { cause, cycle } => {
            format!("misspeculation at cycle {cycle}: {cause:?}")
        }
        RunEvent::BudgetExhausted => format!("instruction budget ({}) exhausted", opts.budget),
    };

    let mem_stats = machine.mem().stats();
    let mut stats = format!(
        "instructions: {}\nbranches: {} ({:.2}% mispredicted)\n\
         loads/stores: {}/{} (speculative {}/{})\n\
         L1 hits/misses: {}/{}\ncommits: {}  aborts: {}  vid resets: {}\nSLAs sent: {}",
        machine.stats().instructions,
        machine.stats().branches,
        machine.stats().mispredict_rate() * 100.0,
        mem_stats.loads,
        mem_stats.stores,
        mem_stats.spec_loads,
        mem_stats.spec_stores,
        mem_stats.l1_hits,
        mem_stats.l1_misses,
        mem_stats.commits,
        mem_stats.aborts,
        mem_stats.vid_resets,
        mem_stats.slas_sent,
    );
    if opts.fault_seed.is_some() {
        stats.push_str(&format!(
            "\ninjected faults: {} conflicts, {} queue delays, {} wrong-path storms",
            mem_stats.injected_conflicts,
            machine.stats().injected_queue_delays,
            machine.stats().injected_wrong_path_storms,
        ));
    }
    let trace = if opts.trace > 0 {
        hmtx_core::render_trace(&machine.mem_mut().take_trace())
    } else {
        String::new()
    };
    let dumps = opts
        .dump
        .iter()
        .map(|a| (*a, machine.mem().peek_word(Addr(*a), Vid(0))))
        .collect();

    Ok(CliReport {
        outcome,
        cycles: machine.cycles(),
        outputs: machine.committed_output().to_vec(),
        dumps,
        stats,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_with(src: &str) -> Options {
        Options {
            programs: vec![src.to_string()],
            quick: true,
            ..Options::default()
        }
    }

    #[test]
    fn runs_a_single_threaded_program() {
        let report = run(&opts_with(
            r"
                li r1, 6
                li r2, 7
                mul r3, r1, r2
                out r3
                halt
            ",
        ))
        .unwrap();
        assert_eq!(report.outputs, vec![42]);
        assert!(report.outcome.contains("halted"));
        assert!(report.cycles > 0);
    }

    #[test]
    fn mem_init_and_dump_round_trip() {
        let mut opts = opts_with(
            r"
                li r1, 0x100000
                ld r2, (r1)
                add r2, r2, 5
                st r2, 8(r1)
                halt
            ",
        );
        opts.init.push((0x100000, 37));
        opts.dump.push(0x100008);
        let report = run(&opts).unwrap();
        assert_eq!(report.dumps, vec![(0x100008, 42)]);
    }

    #[test]
    fn transactional_program_with_trace() {
        let mut opts = opts_with(
            r"
                li r10, 1
                beginMTX r10
                li r1, 0x100000
                li r2, 9
                st r2, (r1)
                commitMTX r10
                halt
            ",
        );
        opts.trace = 32;
        opts.dump.push(0x100000);
        let report = run(&opts).unwrap();
        assert_eq!(report.dumps, vec![(0x100000, 9)]);
        assert!(report.trace.contains("commit v1"), "{}", report.trace);
        assert!(report.stats.contains("commits: 1"));
    }

    #[test]
    fn two_thread_pipeline() {
        let producer = r"
                li r1, 11
                produce q0, r1
                halt
        ";
        let consumer = r"
                consume r2, q0
                out r2
                halt
        ";
        let opts = Options {
            programs: vec![producer.to_string(), consumer.to_string()],
            quick: true,
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.outputs, vec![11]);
    }

    #[test]
    fn parse_args_handles_flags_and_errors() {
        let err = parse_args(Vec::<String>::new()).unwrap_err();
        assert!(err.to_string().contains("usage"));
        let err = parse_args(vec!["--cores".to_string()]).unwrap_err();
        assert!(err.to_string().contains("--cores"));
        let err = parse_args(vec!["--mem".to_string(), "nope".to_string()]).unwrap_err();
        assert!(err.to_string().contains("addr=value"));
        let err = parse_args(vec!["--faults".to_string()]).unwrap_err();
        assert!(err.to_string().contains("--faults"));
        let err = parse_args(vec!["--fault-rate".to_string(), "abc".to_string()]).unwrap_err();
        assert!(err.to_string().contains("fault rate"));
    }

    #[test]
    fn fault_injection_flags_reach_the_machine() {
        let mut opts = opts_with(
            r"
                li r10, 1
                beginMTX r10
                li r1, 0x100000
                li r2, 9
                st r2, (r1)
                commitMTX r10
                halt
            ",
        );
        opts.fault_seed = Some(7);
        opts.fault_rate_ppm = 1_000_000; // every eligible access faults
        let report = run(&opts).unwrap();
        assert!(
            report.outcome.contains("misspeculation"),
            "a certain-fire fault plan must abort the transaction: {}",
            report.outcome
        );
        assert!(
            report.stats.contains("injected faults"),
            "{}",
            report.stats
        );
    }

    fn write_seed(tag: &str, seed: &ScheduleSeed) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "hmtx-cli-{}-{tag}.json",
            std::process::id()
        ));
        std::fs::write(&path, seed.to_json().pretty()).unwrap();
        path
    }

    #[test]
    fn ops_seed_replays_clean_without_programs() {
        let cfg = hmtx_types::ModelCheckConfig::default();
        let kernel = hmtx_explore::model_kernel(&cfg);
        let seed = ScheduleSeed {
            kind: "ops".to_string(),
            name: kernel.name.to_string(),
            seed_bug: None,
            picks: Vec::new(),
            order: (0..kernel.len()).collect(),
            note: "serial order".to_string(),
        };
        let path = write_seed("clean", &seed);
        let opts = parse_args(vec!["--replay".to_string(), path.display().to_string()]).unwrap();
        let report = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.outcome, "ops replay clean");
        assert!(report.stats.contains("strict prefix"), "{}", report.stats);
        assert!(
            report.stats.contains("committed transactions: 3"),
            "{}",
            report.stats
        );
    }

    #[test]
    fn lowered_model_counterexample_replays_to_the_same_rule() {
        // End-to-end differential check: the model checker finds the planted
        // defect, lowers the trace to a seed, and `hmtx-run --replay` on
        // that seed reproduces the *same* violated invariant and exits
        // nonzero.
        let cfg = hmtx_types::ModelCheckConfig {
            seed_bug: Some(SeedBug::StaleMigrationReplica),
            ..hmtx_types::ModelCheckConfig::default()
        };
        let kernel = hmtx_explore::model_kernel(&cfg);
        let report = hmtx_modelcheck::check_kernel(&kernel, &cfg);
        let v = report
            .violations
            .first()
            .expect("the planted defect must be rediscovered");
        let seed = hmtx_modelcheck::lower(&kernel, &cfg, v);
        let path = write_seed("defect", &seed);
        let opts = parse_args(vec!["--replay".to_string(), path.display().to_string()]).unwrap();
        let err = run(&opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            err.to_string().contains(&v.rule),
            "replay must name the violated rule `{}`: {err}",
            v.rule
        );
    }

    #[test]
    fn unknown_ops_kernel_is_an_error() {
        let seed = ScheduleSeed {
            kind: "ops".to_string(),
            name: "no-such-kernel".to_string(),
            seed_bug: None,
            picks: Vec::new(),
            order: vec![0],
            note: String::new(),
        };
        let path = write_seed("unknown", &seed);
        let opts = parse_args(vec!["--replay".to_string(), path.display().to_string()]).unwrap();
        let err = run(&opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("unknown op kernel"), "{err}");
    }

    #[test]
    fn too_few_cores_is_an_error() {
        let opts = Options {
            programs: vec!["halt".into(), "halt".into(), "halt".into()],
            cores: Some(2),
            quick: true,
            ..Options::default()
        };
        assert!(run(&opts).is_err());
    }
}
