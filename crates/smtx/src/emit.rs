//! Guest-program generation for the SMTX pipeline: stage 1, stage-2
//! workers, and the commit process.

use std::sync::Arc;

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_runtime::env::{regs, LoopEnv};
use hmtx_runtime::{GeneratedThread, GeneratedThreads, LoopBody};
use hmtx_types::{QueueId, SimError, SmtxConfig};

/// Queue carrying `(worker_tag << 56) | record_count` messages (and
/// all-ones sentinels) to the commit process.
const COMMIT_QUEUE: QueueId = QueueId(15);

/// Log regions are 64 KiB rings; offsets wrap with this mask (8-byte
/// records).
const LOG_OFFSET_MASK: i64 = 0xFFF8;

/// How much speculation validation the SMTX port performs (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RwSetMode {
    /// Expert-minimized read/write sets: a handful of records per iteration
    /// regardless of how much memory the iteration touches.
    Minimal,
    /// Validation on shared-data accesses (roughly a quarter of the
    /// iteration's traffic) — Figure 2's "substantial" configuration.
    Substantial,
    /// Every load and store validated, matching the HMTX evaluation.
    Maximal,
}

impl RwSetMode {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RwSetMode::Minimal => "minimal",
            RwSetMode::Substantial => "substantial",
            RwSetMode::Maximal => "maximal",
        }
    }
}

/// Rewrites `SPEC_LOADS`/`SPEC_STORES` after a body according to the mode.
fn emit_mode_counts(b: &mut ProgramBuilder, mode: RwSetMode, body: &dyn LoopBody) {
    match mode {
        RwSetMode::Minimal => {
            let (l, s) = body.minimal_rw_counts();
            b.li(regs::SPEC_LOADS, l as i64);
            b.li(regs::SPEC_STORES, s as i64);
        }
        RwSetMode::Substantial => {
            b.shr(regs::SPEC_LOADS, regs::SPEC_LOADS, 2);
            b.shr(regs::SPEC_STORES, regs::SPEC_STORES, 2);
            b.or(regs::SPEC_LOADS, regs::SPEC_LOADS, 1);
            b.or(regs::SPEC_STORES, regs::SPEC_STORES, 1);
        }
        RwSetMode::Maximal => {}
    }
}

/// Emits the per-iteration log shipping: `SPEC_LOADS + SPEC_STORES` record
/// appends into this source's private log ring (base held in `RCB`, offset
/// in `SLOT`), chunk-synchronization cost, and the tagged count message to
/// the commit queue.
fn emit_log_shipping(
    b: &mut ProgramBuilder,
    smtx: &SmtxConfig,
    source_tag: u64,
) -> Result<(), SimError> {
    let loop_head = b.new_label();
    let loop_done = b.new_label();
    // R12 = records remaining, R13 = total records.
    b.add(Reg::R13, regs::SPEC_LOADS, regs::SPEC_STORES);
    b.mov(Reg::R12, Reg::R13);
    b.bind(loop_head)?;
    b.branch_imm(Cond::Eq, Reg::R12, 0, loop_done);
    b.add(regs::T0, regs::RCB, regs::SLOT);
    b.store(Reg::R12, regs::T0, 0);
    b.addi(regs::SLOT, regs::SLOT, 8);
    b.and(regs::SLOT, regs::SLOT, LOG_OFFSET_MASK);
    b.compute(smtx.log_append_instrs);
    b.sub(Reg::R12, Reg::R12, 1);
    b.jump(loop_head);
    b.bind(loop_done)?;
    // Queue-synchronization cost per chunk of records.
    b.alu(
        hmtx_isa::AluOp::Div,
        regs::T0,
        Reg::R13,
        smtx.queue_chunk as i64,
    );
    b.mul(regs::T0, regs::T0, smtx.queue_sync_instrs as i64);
    b.compute_reg(regs::T0);
    // Message: (tag << 56) | count.
    b.li(regs::T0, (source_tag << 56) as i64);
    b.or(regs::T0, regs::T0, Reg::R13);
    b.produce(COMMIT_QUEUE, regs::T0);
    Ok(())
}

/// Builds the SMTX pipeline: stage 1 on core 0, `workers` stage-2 workers on
/// cores `1..=workers`, and the commit process on core `workers + 1`.
pub fn build_smtx_pipeline(
    body: &dyn LoopBody,
    env: &LoopEnv,
    smtx: &SmtxConfig,
    mode: RwSetMode,
) -> Result<GeneratedThreads, SimError> {
    let w_count = env.workers;
    let mut threads = Vec::new();

    // ---- stage 1 (core 0) ----
    {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let finish = b.new_label();
        let cont = b.new_label();
        let route: Vec<_> = (0..w_count).map(|_| b.new_label()).collect();
        b.li(regs::RCB, env.smtx_log_region(w_count).0 as i64); // stage-1 log
        b.li(regs::SLOT, 0); // log offset
        b.li(regs::N, 1);
        b.bind(head)?;
        b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, finish);
        b.li(regs::STOP, 0);
        b.compute(smtx.tx_mgmt_instrs); // software MTX bookkeeping
        body.emit_stage1(&mut b, env);
        emit_mode_counts(&mut b, mode, body);
        // Value forwarding: each speculative store's value is sent to the
        // next stage in software.
        b.mul(regs::T0, regs::SPEC_STORES, smtx.forward_instrs as i64);
        b.compute_reg(regs::T0);
        emit_log_shipping(&mut b, smtx, w_count as u64)?;
        // Route (n, item) to worker (n-1) % W.
        b.sub(regs::T0, regs::N, 1);
        b.rem(regs::T0, regs::T0, w_count as i64);
        for (w, label) in route.iter().enumerate() {
            b.branch_imm(Cond::Eq, regs::T0, w as i64, *label);
        }
        for (w, label) in route.iter().enumerate() {
            b.bind(*label)?;
            b.produce(QueueId(w), regs::N);
            b.produce(QueueId(w), regs::ITEM);
            b.jump(cont);
        }
        b.bind(cont)?;
        b.branch_imm(Cond::Ne, regs::STOP, 0, finish);
        b.addi(regs::N, regs::N, 1);
        b.jump(head);
        b.bind(finish)?;
        b.li(regs::T0, 0);
        for w in 0..w_count {
            b.produce(QueueId(w), regs::T0);
        }
        b.li(regs::T0, -1);
        b.produce(COMMIT_QUEUE, regs::T0);
        b.halt();
        threads.push(GeneratedThread {
            core: 0,
            program: Arc::new(b.build()?),
        });
    }

    // ---- stage-2 workers (cores 1..=W) ----
    for w in 0..w_count {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.li(regs::RCB, env.smtx_log_region(w).0 as i64);
        b.li(regs::SLOT, 0);
        b.bind(head)?;
        b.consume(regs::N, QueueId(w));
        b.branch_imm(Cond::Eq, regs::N, 0, done);
        b.consume(regs::ITEM, QueueId(w));
        b.compute(smtx.tx_mgmt_instrs); // software MTX bookkeeping
        body.emit_stage2(&mut b, env);
        emit_mode_counts(&mut b, mode, body);
        emit_log_shipping(&mut b, smtx, w as u64)?;
        b.jump(head);
        b.bind(done)?;
        b.li(regs::T0, -1);
        b.produce(COMMIT_QUEUE, regs::T0);
        b.halt();
        threads.push(GeneratedThread {
            core: 1 + w,
            program: Arc::new(b.build()?),
        });
    }

    // ---- commit process (core W + 1) ----
    {
        let sources = w_count + 1; // workers + stage 1
        let per_record = (smtx.validate_read_instrs + smtx.apply_write_instrs).div_ceil(2);
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let sentinel = b.new_label();
        let done = b.new_label();
        let handlers: Vec<_> = (0..sources).map(|_| b.new_label()).collect();
        // R4..R4+sources: per-source log read offsets; R10: live sources.
        for s in 0..sources {
            b.li(Reg::from_index(4 + s), 0);
        }
        b.li(Reg::R10, sources as i64);
        b.bind(head)?;
        b.consume(regs::T0, COMMIT_QUEUE);
        b.li(regs::T1, -1);
        b.branch(Cond::Eq, regs::T0, regs::T1, sentinel);
        b.shr(Reg::R11, regs::T0, 56);
        b.li(regs::T1, 0x00FF_FFFF_FFFF_FFFF);
        b.and(Reg::R12, regs::T0, regs::T1);
        for (s, label) in handlers.iter().enumerate() {
            b.branch_imm(Cond::Eq, Reg::R11, s as i64, *label);
        }
        b.jump(head); // unknown tag: ignore (cannot happen)
        for (s, label) in handlers.iter().enumerate() {
            let ptr = Reg::from_index(4 + s);
            let vloop = b.new_label();
            let vdone = b.new_label();
            b.bind(*label)?;
            b.li(Reg::R13, env.smtx_log_region(s).0 as i64);
            b.bind(vloop)?;
            b.branch_imm(Cond::Eq, Reg::R12, 0, vdone);
            b.add(regs::T1, Reg::R13, ptr);
            b.load(Reg::R2, regs::T1, 0);
            b.compute(per_record);
            b.addi(ptr, ptr, 8);
            b.and(ptr, ptr, LOG_OFFSET_MASK);
            b.sub(Reg::R12, Reg::R12, 1);
            b.jump(vloop);
            b.bind(vdone)?;
            b.jump(head);
        }
        b.bind(sentinel)?;
        b.sub(Reg::R10, Reg::R10, 1);
        b.branch_imm(Cond::Ne, Reg::R10, 0, head);
        b.jump(done);
        b.bind(done)?;
        b.halt();
        threads.push(GeneratedThread {
            core: 1 + w_count,
            program: Arc::new(b.build()?),
        });
    }

    Ok(GeneratedThreads { threads })
}
