//! SMTX — the *software* multithreaded-transaction baseline (Raman et al.,
//! ASPLOS 2010) that the paper compares HMTX against (Figures 2 and 8).
//!
//! SMTX runs speculative pipeline parallelism on commodity hardware:
//! processes hold private (copy-on-write) versions of memory, uncommitted
//! values are forwarded between pipeline stages through software queues, and
//! a dedicated **commit process** receives a log record for every validated
//! speculative load and store, re-checks loads against committed state, and
//! applies stores. Its defining cost is communication proportional to the
//! read/write-set size — plus an entire core consumed by the commit process.
//!
//! This crate reproduces that execution model on the same simulated
//! machine, using no HMTX instructions at all:
//!
//! * stage 1 forwards each work item through a hardware queue (modeling the
//!   software value-forwarding queues);
//! * every worker appends one log record per validated access to a private
//!   log region (real stores, real cache pressure) and posts a per-iteration
//!   message to the commit core;
//! * the commit core reads every record back (cache-to-cache traffic) and
//!   charges validation instructions per record.
//!
//! [`RwSetMode`] selects how much validation runs: `Minimal` models the
//! expert-minimized read/write sets of the paper's SMTX ports, `Substantial`
//! models validation on shared-data accesses (Figure 2's second bar), and
//! `Maximal` validates every load and store like the HMTX configuration.

#![warn(missing_docs)]

pub mod emit;
pub mod hytm;
pub mod runner;

pub use emit::RwSetMode;
pub use hytm::run_hytm;
pub use runner::{run_smtx, SmtxReport};

#[cfg(test)]
mod smtx_tests;
