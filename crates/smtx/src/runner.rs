//! Harness for running a loop under the SMTX baseline.

use hmtx_machine::{Machine, MachineStats, RunEvent, ThreadContext};
use hmtx_types::{Cycle, MachineConfig, SimError, ThreadId};

use hmtx_runtime::{LoopBody, LoopEnv};

use crate::emit::{build_smtx_pipeline, RwSetMode};

/// Result of an SMTX pipeline run.
#[derive(Debug, Clone)]
pub struct SmtxReport {
    /// Validation mode that ran.
    pub mode: RwSetMode,
    /// Completion time in cycles.
    pub cycles: Cycle,
    /// Retired instructions (including all validation work).
    pub instructions: u64,
    /// Committed program output (unordered across workers; SMTX buffers and
    /// reorders output in the real system, which this model does not).
    pub outputs: Vec<u64>,
    /// Machine statistics snapshot.
    pub machine_stats: MachineStats,
}

/// Runs `body` as an SMTX pipeline on commodity hardware (no HMTX
/// instructions): stage 1 + `num_cores - 2` workers + the commit process.
///
/// # Errors
///
/// Returns [`SimError`] for guest-program bugs or budget exhaustion. SMTX
/// runs never abort in this model (the paper's benchmarks never
/// misspeculate; conflict-freedom is the workload's responsibility).
pub fn run_smtx(
    body: &dyn LoopBody,
    cfg: &MachineConfig,
    mode: RwSetMode,
    budget: u64,
) -> Result<(Machine, SmtxReport), SimError> {
    let workers = cfg.num_cores.saturating_sub(2).max(1);
    let env = LoopEnv::new(cfg.hmtx.max_vid().0, workers);
    let mut machine = Machine::new(cfg.clone());
    body.build_image(&mut machine, &env);

    let generated = build_smtx_pipeline(body, &env, &cfg.smtx, mode)?;
    for (i, t) in generated.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }

    match machine.run(budget)? {
        RunEvent::AllHalted => {}
        RunEvent::BudgetExhausted => return Err(SimError::InstructionBudgetExceeded { budget }),
        RunEvent::Misspeculation { cause, .. } => {
            return Err(SimError::BadProgram(format!(
                "SMTX run uses no transactions yet misspeculated: {cause:?}"
            )))
        }
    }

    let report = SmtxReport {
        mode,
        cycles: machine.cycles(),
        instructions: machine.stats().instructions,
        outputs: machine.committed_output().to_vec(),
        machine_stats: *machine.stats(),
    };
    Ok((machine, report))
}
