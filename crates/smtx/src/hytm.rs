//! HyTM — the hybrid execution mode: transactions run on the HMTX fast
//! path under configurable capacity bounds, and demote *per transaction*
//! to an SMTX-style instrumented software slow path when the hardware path
//! degrades (DESIGN.md §11).
//!
//! The demotion ladder, per abort of the first uncommitted transaction:
//!
//! 1. **Fast-path retry with backoff** — conflict-class aborts re-dispatch
//!    the paradigm after a seeded-deterministic exponential stall, up to
//!    `HytmConfig::demote_after_aborts` consecutive failures.
//! 2. **Software slow path** — `SpecOverflow` (capacity), the VID-exhaustion
//!    watchdog sentinel, an injected fault, or `K` consecutive conflict
//!    aborts demote the stuck transaction: it executes non-speculatively
//!    with the SMTX cost model charged (transaction management plus
//!    per-record log/validation instructions), then the fast path resumes
//!    at the next transaction.
//! 3. **Storm breaker** — `HytmConfig::storm_threshold` consecutive
//!    demotions with no intervening fast-path commit serialize a whole
//!    group of `HytmConfig::storm_group` transactions on the slow path in
//!    one slab, so a capacity squeeze or conflict burst cannot thrash the
//!    ladder one transaction at a time.
//!
//! Unlike the PR 2 recovery ladder's terminal `NonSpec` rung, the slow path
//! here is *bounded*: only the demoted transaction (or storming group) is
//! serialized, and hardware speculation resumes immediately after — the
//! progress guarantee of Alistarh et al.'s hybrid TM formalization.

use std::sync::Arc;

use hmtx_core::faults;
use hmtx_isa::{Cond, ProgramBuilder};
use hmtx_machine::{Machine, RunEvent, ThreadContext};
use hmtx_runtime::env::regs;
use hmtx_runtime::{
    build_paradigm, chaos_invariant_check, resync_rcb, squeezed_config, DemotionCause, HytmMix,
    LoopBody, LoopEnv, Paradigm, RecoveryRecord, RecoveryRung, RunReport,
};
use hmtx_types::{HytmConfig, MachineConfig, SimError, SmtxConfig, ThreadId, Vid};

/// Stream tag for the deterministic backoff jitter.
const BACKOFF_STREAM: u64 = 0x4859_544D_424F_4646; // "HYTMBOFF"

/// Seeded-deterministic exponential backoff with jitter: doubling from the
/// base per extra failure of the same transaction, clamped to the cap,
/// plus a jitter in `[0, base)` derived from `(seed, n0, depth)`.
fn backoff_cycles(hytm: &HytmConfig, n0: u64, depth: u64) -> u64 {
    let exp = depth.saturating_sub(1).min(20);
    let stall = hytm.backoff_cap_cycles.min(
        hytm.backoff_base_cycles
            .checked_shl(exp as u32)
            .unwrap_or(u64::MAX),
    );
    let jitter = if hytm.backoff_base_cycles > 1 {
        faults::derive(
            hytm.backoff_seed,
            BACKOFF_STREAM ^ (n0.wrapping_mul(0x9E37_79B9).wrapping_add(depth)),
            hytm.backoff_base_cycles,
        )
    } else {
        0
    };
    stall + jitter
}

/// Builds the bounded, SMTX-instrumented, non-speculative slow-path range:
/// transactions `n0 .. n0 + count` (clamped to the loop bound, honoring the
/// early-stop flag), both stages inline on core 0, with the SMTX cost model
/// charged per iteration — transaction-management instructions up front and
/// `log_append + (validate_read + apply_write) / 2` instructions per
/// validated speculative access after the body runs.
fn build_slow_range(
    body: &dyn LoopBody,
    env: &LoopEnv,
    smtx: &SmtxConfig,
    n0: u64,
    count: u64,
) -> Result<Arc<hmtx_isa::Program>, SimError> {
    let per_record =
        smtx.log_append_instrs + (smtx.validate_read_instrs + smtx.apply_write_instrs).div_ceil(2);
    let mut b = ProgramBuilder::new();
    let head = b.new_label();
    let done = b.new_label();
    b.li(regs::RCB, env.rcb.0 as i64);
    b.li(regs::MAX_VID, env.max_vid as i64);
    b.li(regs::SLOT, env.produced_slot.0 as i64);
    b.li(regs::N, n0 as i64);
    b.li(regs::STOP, 0);
    b.li(regs::BOUND, n0.saturating_add(count) as i64);
    b.bind(head)?;
    b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, done);
    b.branch(Cond::GeU, regs::N, regs::BOUND, done);
    b.li(regs::STOP, 0);
    b.compute(smtx.tx_mgmt_instrs);
    body.emit_stage1(&mut b, env);
    body.emit_stage2(&mut b, env);
    b.add(regs::T0, regs::SPEC_LOADS, regs::SPEC_STORES);
    b.mul(regs::T0, regs::T0, per_record as i64);
    b.compute_reg(regs::T0);
    b.branch_imm(Cond::Ne, regs::STOP, 0, done);
    b.addi(regs::N, regs::N, 1);
    b.jump(head);
    b.bind(done)?;
    b.halt();
    Ok(Arc::new(b.build()?))
}

/// Runs the slow-path range and reads back how far it got. Returns
/// `(completed, stopped)` — the number of transactions finished and whether
/// the early-stop flag ended the loop. Every core is left unloaded.
fn run_slow_range(
    machine: &mut Machine,
    body: &dyn LoopBody,
    env: &LoopEnv,
    smtx: &SmtxConfig,
    n0: u64,
    count: u64,
    budget: u64,
) -> Result<(u64, bool), SimError> {
    let program = build_slow_range(body, env, smtx, n0, count)?;
    machine.load_thread(0, ThreadContext::new(ThreadId(0), program));
    match machine.run(budget)? {
        RunEvent::AllHalted => {}
        RunEvent::BudgetExhausted => return Err(SimError::InstructionBudgetExceeded { budget }),
        RunEvent::Misspeculation { cause, .. } => {
            // The slow path uses no transactions and injection never
            // targets non-speculative accesses.
            return Err(SimError::BadProgram(format!(
                "misspeculation on the HyTM software slow path: {cause:?}"
            )));
        }
    }
    let t = machine
        .thread(0)
        .ok_or_else(|| SimError::BadProgram("HyTM slow-path thread vanished".into()))?;
    let n_final = t.regs[regs::N.index()];
    let stopped = t.regs[regs::STOP.index()] != 0;
    let completed = if stopped {
        n_final - n0 + 1
    } else {
        n_final - n0
    };
    for core in 0..machine.config().num_cores {
        machine.unload_thread(core);
    }
    Ok((completed, stopped))
}

/// Loads the paradigm's generated threads starting at transaction `n0`.
fn dispatch_fast(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    machine: &mut Machine,
    n0: u64,
) -> Result<(), SimError> {
    let generated = build_paradigm(paradigm, body, env, n0)?;
    for (i, t) in generated.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }
    Ok(())
}

/// Runs `body` under `paradigm` in the hybrid `hytm` mode: the HMTX fast
/// path bounded by [`HytmConfig`], with per-transaction demotion to the
/// SMTX-instrumented software slow path (see the module docs for the
/// ladder). If `cfg.hytm` is disabled, the run enables
/// [`HytmConfig::paper_default`]'s bounds.
///
/// The returned [`RunReport`] carries the fast/slow-path mix in
/// [`RunReport::hytm`], and every demotion appears in the recovery log as a
/// [`RecoveryRung::SoftwareSlowPath`] record with its [`DemotionCause`].
///
/// # Errors
///
/// Returns [`SimError`] for guest-program bugs, budget exhaustion, or —
/// as [`SimError::Livelock`] — when the run recovers
/// `cfg.max_recoveries` times without completing.
pub fn run_hytm(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    cfg: &MachineConfig,
    budget: u64,
) -> Result<(Machine, RunReport), SimError> {
    let mut base = cfg.clone();
    if !base.hytm.enabled {
        base.hytm = HytmConfig::paper_default();
    }
    let workers = match paradigm {
        Paradigm::Sequential => 1,
        Paradigm::Doall | Paradigm::Doacross => base.num_cores,
        Paradigm::Dswp => 1,
        Paradigm::PsDswp => base.num_cores.saturating_sub(1).max(1),
    };
    let (run_cfg, max_vid) = squeezed_config(&base);
    let hytm = run_cfg.hytm;
    let smtx = run_cfg.smtx;
    let env = LoopEnv::new(max_vid, workers)
        .with_pipeline_window(run_cfg.pipeline_window)
        .with_vid_watchdog(hytm.watchdog_spins);
    let mut machine = Machine::new(run_cfg);
    body.build_image(&mut machine, &env);

    dispatch_fast(paradigm, body, &env, &mut machine, 1)?;

    let mut mix = HytmMix::default();
    let mut recoveries = 0u64;
    let mut recovery_causes = Vec::new();
    let mut recovery_log: Vec<RecoveryRecord> = Vec::new();
    let mut stuck_n0 = 0u64;
    let mut depth = 0u64;
    let mut slow_done = 0u64;
    let mut consecutive_demotions = 0u64;
    // Total completed transactions at the end of the previous demotion's
    // slow-path slab; fast-path progress past it resets the storm counter.
    let mut demotion_frontier = 0u64;
    loop {
        let spent = machine.stats().instructions;
        let event = machine.run(budget.saturating_sub(spent))?;
        match event {
            RunEvent::AllHalted => break,
            RunEvent::BudgetExhausted => {
                return Err(SimError::InstructionBudgetExceeded { budget });
            }
            RunEvent::Misspeculation { cause, cycle } => {
                recoveries += 1;
                if recoveries > base.max_recoveries {
                    return Err(SimError::Livelock {
                        recoveries,
                        last_cause: format!("{cause:?}"),
                    });
                }
                chaos_invariant_check(&base, &machine)?;

                let committed = machine.mem().stats().commits + slow_done;
                let n0 = committed + 1;
                if n0 == stuck_n0 {
                    depth += 1;
                } else {
                    stuck_n0 = n0;
                    depth = 1;
                }

                // Shared cleanup: free the VID space, repair the control
                // block, clear every core.
                if machine.mem().last_committed() > Vid::NON_SPECULATIVE {
                    machine.vid_reset();
                }
                resync_rcb(&mut machine, &env, committed, cycle)?;
                for core in 0..machine.config().num_cores {
                    machine.unload_thread(core);
                }

                // Classify: immediate demotion causes bypass the retry
                // budget; conflicts demote only as a K-deep abort storm.
                // Epilogue-only failures (everything committed) always
                // re-dispatch in parallel, as in the base ladder.
                let demotion = if n0 > body.iterations() {
                    None
                } else {
                    DemotionCause::immediate(&cause).or_else(|| {
                        (depth >= hytm.demote_after_aborts).then_some(DemotionCause::AbortStorm)
                    })
                };

                let rung = match demotion {
                    None => {
                        let stall = backoff_cycles(&hytm, n0, depth);
                        machine.stall_all(stall);
                        mix.backoff_cycles += stall;
                        mix.fast_retries += 1;
                        dispatch_fast(paradigm, body, &env, &mut machine, n0)?;
                        RecoveryRung::Parallel
                    }
                    Some(cause_class) => {
                        let idx = DemotionCause::ALL
                            .iter()
                            .position(|c| *c == cause_class)
                            .expect("cause in ALL");
                        mix.demotions_by_cause[idx] += 1;
                        if committed > demotion_frontier {
                            // Fast-path commits happened since the last
                            // demotion: the storm broke on its own.
                            consecutive_demotions = 0;
                        }
                        consecutive_demotions += 1;
                        let group = if consecutive_demotions >= hytm.storm_threshold {
                            mix.storm_serializations += 1;
                            consecutive_demotions = 0;
                            hytm.storm_group
                        } else {
                            1
                        };
                        let spent = machine.stats().instructions;
                        let (done, stopped) = run_slow_range(
                            &mut machine,
                            body,
                            &env,
                            &smtx,
                            n0,
                            group,
                            budget.saturating_sub(spent),
                        )?;
                        slow_done += done;
                        mix.slow_commits += done;
                        let now_committed = committed + done;
                        demotion_frontier = now_committed;
                        stuck_n0 = 0;
                        depth = 0;
                        let now = machine.cycles();
                        resync_rcb(&mut machine, &env, now_committed, now)?;
                        if !stopped && now_committed < body.iterations() {
                            dispatch_fast(paradigm, body, &env, &mut machine, now_committed + 1)?;
                        }
                        RecoveryRung::SoftwareSlowPath
                    }
                };
                recovery_causes.push(cause);
                recovery_log.push(RecoveryRecord {
                    cause,
                    cycle,
                    depth,
                    rung,
                    demotion,
                });
            }
        }
    }

    chaos_invariant_check(&base, &machine)?;
    if let Some(expected) = body.expected_outputs() {
        let got = machine.committed_output().len() as u64;
        debug_assert_eq!(expected, got, "workload output count mismatch");
    }

    mix.fast_commits = machine.mem().stats().commits;
    let report = RunReport {
        paradigm,
        cycles: machine.cycles(),
        instructions: machine.stats().instructions,
        recoveries,
        recovery_causes,
        recovery_log,
        outputs: machine.committed_output().to_vec(),
        machine_stats: *machine.stats(),
        hytm: Some(mix),
    };
    Ok((machine, report))
}
