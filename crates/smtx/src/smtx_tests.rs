//! SMTX baseline tests: correctness of the pipeline, and the Figure 2
//! phenomenon — minimal validation is cheap, heavy validation makes the
//! commit process the bottleneck.

use hmtx_isa::{ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::regs;
use hmtx_runtime::{run_loop, LoopBody, LoopEnv, Paradigm};
use hmtx_types::{Addr, MachineConfig, Vid};

use crate::emit::RwSetMode;
use crate::runner::run_smtx;

const CELLS: u64 = 0x0010_0000;

fn cfg() -> MachineConfig {
    MachineConfig::test_default()
}

/// A loop whose stage 2 touches `touches` lines per iteration and reports
/// its true access counts (for maximal validation).
struct TouchLines {
    iters: u64,
    touches: u64,
}

impl LoopBody for TouchLines {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // Touch `touches` lines in a private per-iteration block.
        let head = b.new_label();
        let done = b.new_label();
        b.mul(Reg::R1, regs::ITEM, 64 * self.touches as i64);
        b.addi(Reg::R1, Reg::R1, CELLS as i64);
        b.li(Reg::R2, 0);
        b.bind(head).unwrap();
        b.branch_imm(hmtx_isa::Cond::GeU, Reg::R2, self.touches as i64, done);
        b.load(Reg::R3, Reg::R1, 0);
        b.add(Reg::R3, Reg::R3, regs::ITEM);
        b.store(Reg::R3, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 64);
        b.addi(Reg::R2, Reg::R2, 1);
        b.jump(head);
        b.bind(done).unwrap();
        // True per-iteration counts for maximal validation.
        b.li(regs::SPEC_LOADS, self.touches as i64);
        b.li(regs::SPEC_STORES, self.touches as i64);
    }
    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

#[test]
fn smtx_pipeline_computes_correct_result() {
    let body = TouchLines {
        iters: 20,
        touches: 4,
    };
    let (machine, report) = run_smtx(&body, &cfg(), RwSetMode::Minimal, 10_000_000).unwrap();
    // Cell (n * touches + k) accumulated n once.
    for n in 1..=20u64 {
        for k in 0..4u64 {
            assert_eq!(
                machine
                    .mem()
                    .peek_word(Addr(CELLS + (n * 4 + k) * 64), Vid(0)),
                n,
                "iteration {n}, line {k}"
            );
        }
    }
    assert!(report.cycles > 0);
}

#[test]
fn validation_overhead_grows_with_rw_set_mode() {
    let run = |mode| {
        let body = TouchLines {
            iters: 30,
            touches: 32,
        };
        let (_, report) = run_smtx(&body, &cfg(), mode, 100_000_000).unwrap();
        report.cycles
    };
    let minimal = run(RwSetMode::Minimal);
    let substantial = run(RwSetMode::Substantial);
    let maximal = run(RwSetMode::Maximal);
    assert!(
        minimal < substantial && substantial < maximal,
        "validation cost must be monotone: {minimal} < {substantial} < {maximal}"
    );
}

#[test]
fn figure2_shape_minimal_speeds_up_substantial_slows_down() {
    // A loop with enough per-iteration work to parallelize profitably, but a
    // large enough footprint that full validation swamps the commit core.
    struct Workish;
    impl LoopBody for Workish {
        fn iterations(&self) -> u64 {
            40
        }
        fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
        fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
            b.mov(regs::ITEM, regs::N);
            b.li(regs::SPEC_LOADS, 1);
            b.li(regs::SPEC_STORES, 1);
        }
        fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
            b.compute(400);
            let head = b.new_label();
            let done = b.new_label();
            b.mul(Reg::R1, regs::ITEM, 64 * 24);
            b.addi(Reg::R1, Reg::R1, CELLS as i64);
            b.li(Reg::R2, 0);
            b.bind(head).unwrap();
            b.branch_imm(hmtx_isa::Cond::GeU, Reg::R2, 24, done);
            b.store(Reg::R2, Reg::R1, 0);
            b.addi(Reg::R1, Reg::R1, 64);
            b.addi(Reg::R2, Reg::R2, 1);
            b.jump(head);
            b.bind(done).unwrap();
            b.li(regs::SPEC_LOADS, 24);
            b.li(regs::SPEC_STORES, 24);
        }
    }

    let (_, seq) = run_loop(Paradigm::Sequential, &Workish, &cfg(), 100_000_000).unwrap();
    let (_, min) = run_smtx(&Workish, &cfg(), RwSetMode::Minimal, 100_000_000).unwrap();
    let (_, max) = run_smtx(&Workish, &cfg(), RwSetMode::Maximal, 100_000_000).unwrap();
    let min_speedup = seq.cycles as f64 / min.cycles as f64;
    let max_speedup = seq.cycles as f64 / max.cycles as f64;
    assert!(
        min_speedup > max_speedup,
        "more validation must not be faster: {min_speedup:.2} vs {max_speedup:.2}"
    );
    assert!(
        min_speedup > 1.0,
        "minimal-validation SMTX should speed up ({min_speedup:.2}x)"
    );
}

#[test]
fn smtx_runs_are_deterministic() {
    let run = || {
        let body = TouchLines {
            iters: 15,
            touches: 8,
        };
        let (m, r) = run_smtx(&body, &cfg(), RwSetMode::Maximal, 50_000_000).unwrap();
        (r.cycles, r.instructions, m.mem().stats().l1_misses)
    };
    assert_eq!(run(), run());
}

#[test]
fn pipeline_structure_has_commit_core_and_log_shipping() {
    use hmtx_isa::Instr;
    use hmtx_runtime::LoopEnv;
    let body = TouchLines {
        iters: 10,
        touches: 4,
    };
    let env = LoopEnv::new(63, 2);
    let g = crate::emit::build_smtx_pipeline(&body, &env, &cfg().smtx, RwSetMode::Maximal).unwrap();
    // stage 1 + 2 workers + commit process.
    assert_eq!(g.threads.len(), 4);
    assert_eq!(g.threads[3].core, 3, "commit process on its own core");
    let count =
        |p: &hmtx_isa::Program, f: fn(&Instr) -> bool| p.instrs().iter().filter(|i| f(i)).count();
    for t in &g.threads {
        assert_eq!(
            count(&t.program, |i| matches!(i, Instr::BeginMtx { .. })),
            0,
            "SMTX never uses HMTX instructions"
        );
        assert_eq!(
            count(&t.program, |i| matches!(i, Instr::CommitMtx { .. })),
            0
        );
    }
    // Workers and stage 1 ship logs (stores) and post to the commit queue.
    for t in &g.threads[..3] {
        assert!(count(&t.program, |i| matches!(i, Instr::Store { .. })) >= 1);
        assert!(count(&t.program, |i| matches!(i, Instr::Produce { .. })) >= 1);
    }
    // The commit process only loads (validation reads), never stores.
    let commit = &g.threads[3].program;
    assert!(count(commit, |i| matches!(i, Instr::Load { .. })) >= 1);
    assert_eq!(count(commit, |i| matches!(i, Instr::Store { .. })), 0);
    assert!(count(commit, |i| matches!(i, Instr::Consume { .. })) >= 1);
}

// ------------------------------------------------------------------- HyTM

use crate::hytm::run_hytm;
use hmtx_runtime::{DemotionCause, RecoveryRung};
use hmtx_types::HytmConfig;

/// A config with the hybrid mode enabled at the given set bounds.
fn hytm_cfg(max_read: u32, max_write: u32) -> MachineConfig {
    let mut c = cfg();
    c.hytm = HytmConfig {
        enabled: true,
        max_read_lines: max_read,
        max_write_lines: max_write,
        ..HytmConfig::paper_default()
    };
    c
}

/// Checks the TouchLines accumulation invariant on a finished machine.
fn assert_touch_lines_output(machine: &Machine, iters: u64, touches: u64) {
    for n in 1..=iters {
        for k in 0..touches {
            assert_eq!(
                machine
                    .mem()
                    .peek_word(Addr(CELLS + (n * touches + k) * 64), Vid(0)),
                n,
                "iteration {n}, line {k}"
            );
        }
    }
}

#[test]
fn hytm_generous_bounds_stay_on_the_fast_path() {
    let body = TouchLines {
        iters: 20,
        touches: 4,
    };
    let (machine, report) =
        run_hytm(Paradigm::PsDswp, &body, &hytm_cfg(64, 64), 10_000_000).unwrap();
    assert_touch_lines_output(&machine, 20, 4);
    let mix = report.hytm.expect("hytm mix present");
    assert_eq!(mix.demotions(), 0, "no demotions under generous bounds");
    assert_eq!(mix.slow_commits, 0);
    assert_eq!(mix.fast_commits, 20);
}

#[test]
fn hytm_capacity_squeeze_demotes_and_still_computes_the_result() {
    // Each iteration writes 4 lines; a 2-line write bound trips
    // SpecOverflow on every transaction, so all progress is slow-path.
    let body = TouchLines {
        iters: 12,
        touches: 4,
    };
    let (machine, report) =
        run_hytm(Paradigm::PsDswp, &body, &hytm_cfg(64, 2), 50_000_000).unwrap();
    assert_touch_lines_output(&machine, 12, 4);
    let mix = report.hytm.expect("hytm mix present");
    assert!(mix.demotions() > 0, "the squeeze must demote: {mix:?}");
    let capacity = DemotionCause::ALL
        .iter()
        .position(|c| *c == DemotionCause::Capacity)
        .unwrap();
    assert!(
        mix.demotions_by_cause[capacity] > 0,
        "demotions classified as capacity: {mix:?}"
    );
    assert_eq!(
        mix.fast_commits + mix.slow_commits,
        12,
        "every transaction committed exactly once: {mix:?}"
    );
    // Demotions are visible in the recovery log with their cause.
    assert!(report
        .recovery_log
        .iter()
        .any(|r| r.rung == RecoveryRung::SoftwareSlowPath
            && r.demotion == Some(DemotionCause::Capacity)));
}

#[test]
fn hytm_runs_are_deterministic() {
    let run = || {
        let body = TouchLines {
            iters: 15,
            touches: 4,
        };
        let (m, r) = run_hytm(Paradigm::PsDswp, &body, &hytm_cfg(8, 2), 50_000_000).unwrap();
        (
            r.cycles,
            r.instructions,
            r.hytm,
            m.mem().stats().l1_misses,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn hytm_spec_overflow_boundary_sweep_never_panics_or_livelocks() {
    // Satellite: the SpecOverflow boundary. Across vid widths and set
    // bounds spanning "always trips" to "never trips", every combination
    // must either finish on the fast path or demote cleanly — and the
    // committed result must be identical throughout.
    let body = TouchLines {
        iters: 10,
        touches: 4,
    };
    for vid_bits in [2u32, 4, 8] {
        for bound in [1u32, 2, 4, 5, 64] {
            let mut c = hytm_cfg(bound, bound);
            c.hmtx.vid_bits = vid_bits;
            let (machine, report) = run_hytm(Paradigm::PsDswp, &body, &c, 100_000_000)
                .unwrap_or_else(|e| panic!("vid_bits={vid_bits} bound={bound}: {e:?}"));
            assert_touch_lines_output(&machine, 10, 4);
            let mix = report.hytm.expect("hytm mix present");
            assert_eq!(
                mix.fast_commits + mix.slow_commits,
                10,
                "vid_bits={vid_bits} bound={bound}: {mix:?}"
            );
            // Stage 2 writes 4 data lines: a bound under 4 cannot hold
            // the write set, so the run must demote.
            if bound < 4 {
                assert!(
                    mix.demotions() > 0,
                    "vid_bits={vid_bits} bound={bound} must demote: {mix:?}"
                );
            }
        }
    }
}

#[test]
fn smtx_uses_one_fewer_worker_than_hmtx() {
    // With 4 cores: HMTX gets 3 stage-2 workers, SMTX only 2 (the commit
    // process eats a core) — the paper's structural handicap.
    let body = TouchLines {
        iters: 30,
        touches: 16,
    };
    let (machine, _) = run_smtx(&body, &cfg(), RwSetMode::Minimal, 100_000_000).unwrap();
    // All four cores were occupied (stage1, 2 workers, commit).
    assert!(machine.stats().instructions > 0);
    let (_, hmtx_report) =
        hmtx_runtime::run_loop(hmtx_runtime::Paradigm::PsDswp, &body, &cfg(), 100_000_000).unwrap();
    let (_, smtx_report) = run_smtx(&body, &cfg(), RwSetMode::Minimal, 100_000_000).unwrap();
    assert!(
        hmtx_report.cycles < smtx_report.cycles,
        "3 workers + hardware validation must beat 2 workers + software"
    );
}
