//! Set-associative caches that hold multiple versions of the same address.
//!
//! # Data-oriented layout
//!
//! Storage is three flat parallel arrays instead of a `Vec<Vec<CacheLine>>`:
//!
//! * `metas` — `num_sets * ways` [`LineMeta`] slots (tag/VID metadata, the
//!   only thing the per-access scans read);
//! * `payloads` — one generational [`PayloadId`] per slot, pointing into
//! * `arena` — a grow-only [`LineData`] pool recycled through a free list.
//!
//! Set `s` occupies slots `[s*ways, s*ways + set_len[s])`; the live prefix
//! discipline reproduces the push / swap-remove / retain ordering of the
//! previous per-set `Vec` representation *exactly*, so victim selection,
//! way numbering, and every downstream trace stay byte-identical. The split
//! keeps the hot set walks inside a few hardware cache lines (no pointer
//! chasing, no per-line heap allocation), and the payload arena turns line
//! movement between levels into 64-byte copies.
//!
//! The cache also carries the per-cache lazy-commit registers from §5.3:
//! [`lc_vid`](Cache::lc_vid) (latest committed VID) and a commit epoch that
//! stands in for the paper's flash-set Committed Bits.

use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
use std::fmt;

use hmtx_types::{CacheConfig, LineAddr, SimError, VictimPolicy, Vid};

use crate::line::{CacheLine, LineData, LineMeta, LineState};

/// Result of inserting a line version into a cache.
#[derive(Debug)]
pub struct InsertOutcome {
    /// The victim that had to be evicted to make room, if the set was full.
    /// The protocol layer decides what to do with it (write back to the next
    /// level, spill to memory, or abort, per §5.4).
    pub evicted: Option<CacheLine>,
    /// Set index the line landed in (useful for tests and traces).
    pub set: usize,
}

/// Generational handle into the payload arena. The generation is bumped
/// every time a slot is freed, so a stale id held across an eviction can
/// never silently alias the slot's next tenant (checked in debug builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PayloadId {
    idx: u32,
    gen: u32,
}

/// Allocates a boxed slice of `n` zeroed `T` directly from the allocator,
/// so large caches get untouched zero pages instead of element-by-element
/// initialization.
///
/// # Safety
///
/// All-zero bytes must be a valid `T`. True for the slot types used here:
/// [`LineMeta`] (its `LineState` is `repr(u8)` with variant 0 valid, every
/// other field a plain integer/bool) and [`PayloadId`] (two `u32`s).
unsafe fn zeroed_slice<T>(n: usize) -> Box<[T]> {
    if n == 0 || std::mem::size_of::<T>() == 0 {
        return Vec::new().into_boxed_slice();
    }
    let layout = Layout::array::<T>(n).expect("slot array size overflows");
    let ptr = alloc_zeroed(layout).cast::<T>();
    if ptr.is_null() {
        handle_alloc_error(layout);
    }
    Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n))
}

/// A set-associative, versioned cache.
///
/// Unlike a conventional cache, one set may contain several lines with the
/// *same address* but different `(modVID, highVID)` version ranges (paper
/// §4.1). Lookups therefore take a caller-supplied predicate that encodes
/// the HMTX hit rules.
///
/// Cloning snapshots the full cache contents (the model checker forks
/// whole memory systems this way).
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: usize,
    /// `num_sets * ways` metadata slots; set `s` lives at `s*ways ..`.
    metas: Box<[LineMeta]>,
    /// Payload handle per slot, parallel to `metas`.
    payloads: Box<[PayloadId]>,
    /// Live-slot count per set.
    set_len: Box<[u32]>,
    arena: Vec<LineData>,
    arena_gen: Vec<u32>,
    free: Vec<u32>,
    lc_vid: Vid,
    commit_epoch: u64,
    lru_clock: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the geometry is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let slots = cfg.num_sets() * cfg.ways;
        // SAFETY: zeroed `LineMeta` and `PayloadId` are valid values (see
        // `zeroed_slice`); slots beyond a set's `set_len` are never read.
        let (metas, payloads) = unsafe { (zeroed_slice(slots), zeroed_slice(slots)) };
        Ok(Cache {
            ways: cfg.ways,
            metas,
            payloads,
            set_len: vec![0u32; cfg.num_sets()].into_boxed_slice(),
            arena: Vec::new(),
            arena_gen: Vec::new(),
            free: Vec::new(),
            lc_vid: Vid::NON_SPECULATIVE,
            commit_epoch: 0,
            lru_clock: 0,
            cfg,
        })
    }

    /// The cache geometry and latency.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// The latest committed VID register (LC VID, §5.3).
    pub fn lc_vid(&self) -> Vid {
        self.lc_vid
    }

    /// Updates the LC VID register (called by the protocol on commit
    /// broadcast or VID reset).
    pub fn set_lc_vid(&mut self, vid: Vid) {
        self.lc_vid = vid;
    }

    /// The current commit epoch. A line whose `commit_epoch` is older has
    /// commit processing pending (the lazy-commit stand-in for the paper's
    /// flash-set CB bits).
    pub fn commit_epoch(&self) -> u64 {
        self.commit_epoch
    }

    /// Advances the commit epoch (O(1) commit broadcast, §5.3).
    pub fn bump_commit_epoch(&mut self) {
        self.commit_epoch += 1;
    }

    /// The set index for an address.
    pub fn set_index(&self, addr: LineAddr) -> usize {
        addr.set_index(self.cfg.num_sets())
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.ways
    }

    #[inline]
    fn len_of(&self, set: usize) -> usize {
        self.set_len[set] as usize
    }

    /// The metadata of the versions currently stored in `set`, in way order.
    #[inline]
    pub fn set_metas(&self, set: usize) -> &[LineMeta] {
        let base = self.base(set);
        &self.metas[base..base + self.len_of(set)]
    }

    /// Metadata of the version at `(set, way)`.
    #[inline]
    pub fn meta(&self, set: usize, way: usize) -> &LineMeta {
        &self.set_metas(set)[way]
    }

    /// Mutable metadata of the version at `(set, way)`.
    #[inline]
    pub fn meta_mut(&mut self, set: usize, way: usize) -> &mut LineMeta {
        assert!(way < self.len_of(set));
        let base = self.base(set);
        &mut self.metas[base + way]
    }

    #[inline]
    fn payload_index(&self, set: usize, way: usize) -> usize {
        assert!(way < self.len_of(set));
        let pid = self.payloads[self.base(set) + way];
        debug_assert_eq!(
            self.arena_gen[pid.idx as usize], pid.gen,
            "stale payload id"
        );
        pid.idx as usize
    }

    /// The data payload of the version at `(set, way)`.
    #[inline]
    pub fn data(&self, set: usize, way: usize) -> &LineData {
        &self.arena[self.payload_index(set, way)]
    }

    /// Mutable data payload of the version at `(set, way)`.
    #[inline]
    pub fn data_mut(&mut self, set: usize, way: usize) -> &mut LineData {
        let idx = self.payload_index(set, way);
        &mut self.arena[idx]
    }

    /// Mutable metadata and data of the version at `(set, way)` together.
    #[inline]
    pub fn line_mut(&mut self, set: usize, way: usize) -> (&mut LineMeta, &mut LineData) {
        let idx = self.payload_index(set, way);
        let slot = self.base(set) + way;
        (&mut self.metas[slot], &mut self.arena[idx])
    }

    /// Assembles a by-value copy of the version at `(set, way)`.
    pub fn snapshot(&self, set: usize, way: usize) -> CacheLine {
        CacheLine {
            meta: *self.meta(set, way),
            data: self.data(set, way).clone(),
        }
    }

    /// Finds the way index of the unique version of `addr` in its set
    /// satisfying `pred` (the protocol's hit rule). Updates no LRU state.
    pub fn find_way(&self, addr: LineAddr, pred: impl Fn(&LineMeta) -> bool) -> Option<usize> {
        let set = self.set_index(addr);
        self.set_metas(set)
            .iter()
            .position(|l| l.addr == addr && pred(l))
    }

    /// Whether any version of `addr` is stored (allocation-free probe for
    /// the snoop "shared" wire).
    pub fn holds_addr(&self, addr: LineAddr) -> bool {
        let set = self.set_index(addr);
        self.set_metas(set).iter().any(|l| l.addr == addr)
    }

    /// All way indices holding versions of `addr`.
    pub fn ways_of(&self, addr: LineAddr) -> Vec<usize> {
        let set = self.set_index(addr);
        self.set_metas(set)
            .iter()
            .enumerate()
            .filter(|(_, l)| l.addr == addr)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks a way as most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.lru_clock += 1;
        self.meta_mut(set, way).last_used = self.lru_clock;
    }

    fn alloc_payload(&mut self, data: LineData) -> PayloadId {
        if let Some(idx) = self.free.pop() {
            self.arena[idx as usize] = data;
            PayloadId {
                idx,
                gen: self.arena_gen[idx as usize],
            }
        } else {
            let idx = self.arena.len() as u32;
            self.arena.push(data);
            self.arena_gen.push(0);
            PayloadId { idx, gen: 0 }
        }
    }

    /// Frees a payload slot, returning its data.
    fn free_payload(&mut self, pid: PayloadId) -> LineData {
        debug_assert_eq!(self.arena_gen[pid.idx as usize], pid.gen, "double free");
        self.arena_gen[pid.idx as usize] = self.arena_gen[pid.idx as usize].wrapping_add(1);
        self.free.push(pid.idx);
        std::mem::take(&mut self.arena[pid.idx as usize])
    }

    /// Frees a payload slot without reading its data back.
    fn release_payload(&mut self, pid: PayloadId) {
        debug_assert_eq!(self.arena_gen[pid.idx as usize], pid.gen, "double free");
        self.arena_gen[pid.idx as usize] = self.arena_gen[pid.idx as usize].wrapping_add(1);
        self.free.push(pid.idx);
    }

    /// Removes slot `way` of `set` with swap-remove semantics (the last live
    /// slot moves into the hole), returning the removed version.
    fn remove_slot(&mut self, set: usize, way: usize) -> CacheLine {
        let len = self.len_of(set);
        assert!(way < len);
        let base = self.base(set);
        let meta = self.metas[base + way];
        let data = self.free_payload(self.payloads[base + way]);
        let last = len - 1;
        if way != last {
            self.metas[base + way] = self.metas[base + last];
            self.payloads[base + way] = self.payloads[base + last];
        }
        self.set_len[set] = last as u32;
        CacheLine { meta, data }
    }

    /// Appends a version at the end of its set's live prefix.
    ///
    /// # Panics
    ///
    /// Panics if the set is full.
    fn push_slot(&mut self, set: usize, line: CacheLine) {
        let len = self.len_of(set);
        assert!(len < self.ways, "set overflow");
        let base = self.base(set);
        self.metas[base + len] = line.meta;
        self.payloads[base + len] = self.alloc_payload(line.data);
        self.set_len[set] = (len + 1) as u32;
    }

    /// Removes and returns the version at `(set, way)`.
    pub fn take(&mut self, set: usize, way: usize) -> CacheLine {
        self.remove_slot(set, way)
    }

    /// Plants a version at the end of its set without touching LRU state
    /// (test helper: bypasses victim selection, panics if the set is full).
    pub fn plant(&mut self, line: CacheLine) {
        let set = self.set_index(line.meta.addr);
        self.push_slot(set, line);
    }

    /// Inserts a line version, evicting a victim chosen by `policy` if the
    /// set is full. The inserted line becomes most recently used.
    pub fn insert(&mut self, mut line: CacheLine, policy: VictimPolicy) -> InsertOutcome {
        let set = self.set_index(line.meta.addr);
        self.lru_clock += 1;
        line.meta.last_used = self.lru_clock;
        let evicted = if self.len_of(set) >= self.ways {
            let victim = choose_victim(self.set_metas(set), policy);
            Some(self.remove_slot(set, victim))
        } else {
            None
        };
        self.push_slot(set, line);
        InsertOutcome { evicted, set }
    }

    /// Walks the versions of `set` in way order, dropping those for which
    /// `f` returns [`LineFate::Invalidate`] (order-preserving compaction,
    /// matching `Vec::retain_mut`). `f` sees only metadata — the walks that
    /// use this (lazy commit processing, invalidation sweeps) never read
    /// payload bytes.
    pub fn retain_set(&mut self, set: usize, mut f: impl FnMut(&mut LineMeta) -> LineFate) {
        let base = self.base(set);
        let len = self.len_of(set);
        let mut keep = 0usize;
        for i in 0..len {
            match f(&mut self.metas[base + i]) {
                LineFate::Keep => {
                    if keep != i {
                        self.metas[base + keep] = self.metas[base + i];
                        self.payloads[base + keep] = self.payloads[base + i];
                    }
                    keep += 1;
                }
                LineFate::Invalidate => {
                    self.release_payload(self.payloads[base + i]);
                }
            }
        }
        self.set_len[set] = keep as u32;
    }

    /// Iterates over every stored line version in set/way order (used by the
    /// eager commit ablation, abort flush, VID reset, and drain walks),
    /// dropping lines for which `f` returns [`LineFate::Invalidate`].
    pub fn for_each_line_mut(&mut self, mut f: impl FnMut(&mut LineMeta, &LineData) -> LineFate) {
        for set in 0..self.set_len.len() {
            let base = self.base(set);
            let len = self.len_of(set);
            let mut keep = 0usize;
            for i in 0..len {
                let pid = self.payloads[base + i];
                let fate = f(&mut self.metas[base + i], &self.arena[pid.idx as usize]);
                match fate {
                    LineFate::Keep => {
                        if keep != i {
                            self.metas[base + keep] = self.metas[base + i];
                            self.payloads[base + keep] = self.payloads[base + i];
                        }
                        keep += 1;
                    }
                    LineFate::Invalidate => self.release_payload(pid),
                }
            }
            self.set_len[set] = keep as u32;
        }
    }

    /// Total number of line versions currently stored.
    pub fn occupancy(&self) -> usize {
        self.set_len.iter().map(|&n| n as usize).sum()
    }

    /// Total number of ways in the cache.
    pub fn capacity(&self) -> usize {
        self.cfg.num_lines()
    }

    /// Returns the protocol-visible *abstract view* of every stored
    /// version, sorted into a canonical order.
    ///
    /// The view erases everything a request cannot observe: absolute
    /// `commit_epoch` values collapse to a "pending lazy commit" flag
    /// (§5.3), absolute `last_used` timestamps collapse to per-set LRU
    /// ranks, and way order within a set is normalized by sorting. Two
    /// caches that no sequence of requests can tell apart produce
    /// identical views — which is exactly what the explicit-state model
    /// checker needs to fold equivalent states together.
    pub fn abstract_view(&self) -> Vec<AbstractLine> {
        let mut out = Vec::with_capacity(self.occupancy());
        for set in 0..self.cfg.num_sets() {
            let metas = self.set_metas(set);
            // Per-set LRU ranks: position of each way in ascending
            // `last_used` order (way index breaks exact ties, matching the
            // deterministic tie-break of `lru_index`).
            let mut order: Vec<usize> = (0..metas.len()).collect();
            order.sort_by_key(|&w| (metas[w].last_used, w));
            let mut rank = vec![0u8; metas.len()];
            for (r, &w) in order.iter().enumerate() {
                rank[w] = r as u8;
            }
            for (w, l) in metas.iter().enumerate() {
                out.push(AbstractLine {
                    set,
                    addr: l.addr,
                    state: l.state,
                    mod_vid: l.mod_vid,
                    high_vid: l.high_vid,
                    phantom_high: l.phantom_high,
                    shared_hint: l.shared_hint,
                    commit_pending: l.commit_epoch < self.commit_epoch,
                    lru_rank: rank[w],
                    word0: self.data(set, w).read_u64(0),
                });
            }
        }
        out.sort_by_key(AbstractLine::sort_key);
        out
    }
}

/// One stored line version as the protocol can observe it (see
/// [`Cache::abstract_view`]): no absolute epochs, clocks, or way indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbstractLine {
    /// Set index the version lives in.
    pub set: usize,
    /// Line address tag.
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// Version-creating VID.
    pub mod_vid: Vid,
    /// Highest observing VID.
    pub high_vid: Vid,
    /// Highest wrong-path phantom mark (§5.1).
    pub phantom_high: Vid,
    /// Uncommitted-value-forwarding residue hint.
    pub shared_hint: bool,
    /// `true` if lazy commit processing (§5.3) has not yet been applied.
    pub commit_pending: bool,
    /// LRU position within the set (0 = least recently used).
    pub lru_rank: u8,
    /// First data word (the model checker abstracts line data to one
    /// deterministically stamped word).
    pub word0: u64,
}

impl AbstractLine {
    /// Canonical sort key (also usable as an encoding tuple).
    #[allow(clippy::type_complexity)]
    #[must_use]
    pub fn sort_key(
        &self,
    ) -> (usize, u64, u8, u16, u16, u16, bool, bool, u8, u64) {
        (
            self.set,
            self.addr.0,
            self.state as u8,
            self.mod_vid.0,
            self.high_vid.0,
            self.phantom_high.0,
            self.shared_hint,
            self.commit_pending,
            self.lru_rank,
            self.word0,
        )
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The slot arrays can span hundreds of thousands of entries; print
        // the registers and a summary instead of the raw storage.
        f.debug_struct("Cache")
            .field("cfg", &self.cfg)
            .field("occupancy", &self.occupancy())
            .field("lc_vid", &self.lc_vid)
            .field("commit_epoch", &self.commit_epoch)
            .field("lru_clock", &self.lru_clock)
            .finish_non_exhaustive()
    }
}

/// Whether a walked line survives (see [`Cache::for_each_line_mut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFate {
    /// Keep the (possibly modified) line.
    Keep,
    /// Drop the line (transition to Invalid).
    Invalidate,
}

/// Chooses an eviction victim among the (full) set per §5.4.
///
/// Preference order for [`VictimPolicy::PreferSafeOverflow`]:
/// 1. non-speculative clean lines (free to drop),
/// 2. non-speculative dirty lines (normal writeback),
/// 3. overflow-safe `S-O(0,·)` lines,
/// 4. anything else (evicting these past the LLC forces an abort),
///
/// breaking ties by LRU. [`VictimPolicy::PlainLru`] ignores state.
fn choose_victim(set: &[LineMeta], policy: VictimPolicy) -> usize {
    assert!(!set.is_empty());
    match policy {
        VictimPolicy::PlainLru => lru_index(set, |_| true),
        VictimPolicy::PreferSafeOverflow => {
            let class = |l: &LineMeta| -> u8 {
                if !l.state.is_speculative() {
                    if l.state.is_dirty() {
                        1
                    } else {
                        0
                    }
                } else if l.state == LineState::SpecOwned && l.mod_vid.is_non_speculative() {
                    2
                } else {
                    3
                }
            };
            let best_class = set.iter().map(&class).min().unwrap();
            lru_index(set, |l| class(l) == best_class)
        }
    }
}

fn lru_index(set: &[LineMeta], pred: impl Fn(&LineMeta) -> bool) -> usize {
    set.iter()
        .enumerate()
        .filter(|(_, l)| pred(l))
        .min_by_key(|(_, l)| l.last_used)
        .map(|(i, _)| i)
        .expect("predicate matched no line")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::CacheConfig;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig {
            size_bytes: 2 * 2 * 64,
            ways: 2,
            latency: 1,
        })
        .unwrap()
    }

    fn line(addr: u64, state: LineState) -> CacheLine {
        CacheLine::non_speculative(LineAddr(addr), state)
    }

    #[test]
    fn insert_and_find() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        c.insert(line(1, LineState::Shared), VictimPolicy::PreferSafeOverflow);
        assert!(c.find_way(LineAddr(0), |_| true).is_some());
        assert!(c.find_way(LineAddr(1), |_| true).is_some());
        assert!(c.find_way(LineAddr(2), |_| true).is_none());
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn bad_geometry_is_an_error_not_a_panic() {
        let err = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            latency: 1,
        })
        .unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn same_address_multiple_versions_coexist() {
        let mut c = small_cache();
        let mut v0 = line(0, LineState::Exclusive);
        v0.state = LineState::SpecOwned;
        v0.high_vid = Vid(1);
        let mut v1 = line(0, LineState::Exclusive);
        v1.state = LineState::SpecModified;
        v1.mod_vid = Vid(1);
        v1.high_vid = Vid(1);
        c.insert(v0, VictimPolicy::PreferSafeOverflow);
        c.insert(v1, VictimPolicy::PreferSafeOverflow);
        assert_eq!(c.ways_of(LineAddr(0)).len(), 2);
    }

    #[test]
    fn lru_eviction_in_plain_mode() {
        let mut c = small_cache();
        // Set 0 holds even line addresses (2 sets).
        c.insert(line(0, LineState::Exclusive), VictimPolicy::PlainLru);
        c.insert(line(2, LineState::Exclusive), VictimPolicy::PlainLru);
        // Touch line 0 so line 2 is LRU.
        let way = c.find_way(LineAddr(0), |_| true).unwrap();
        c.touch(0, way);
        let out = c.insert(line(4, LineState::Exclusive), VictimPolicy::PlainLru);
        let evicted = out.evicted.expect("set was full");
        assert_eq!(evicted.addr, LineAddr(2));
    }

    #[test]
    fn lru_tie_break_picks_lowest_way() {
        // Two untouched lines share last_used only if planted; real inserts
        // stamp strictly increasing clocks, so force a tie via plant().
        let mut c = small_cache();
        c.plant(line(0, LineState::Exclusive));
        c.plant(line(2, LineState::Exclusive));
        // Both have last_used == 0: the victim must be way 0 (first minimum
        // in way order), i.e. line 0.
        let out = c.insert(line(4, LineState::Exclusive), VictimPolicy::PlainLru);
        assert_eq!(out.evicted.unwrap().addr, LineAddr(0));
    }

    #[test]
    fn eviction_preserves_way_order_of_survivors() {
        // swap_remove semantics: evicting way 0 moves the *last* line into
        // way 0, then the new line lands at the end.
        let mut c = small_cache();
        c.insert(line(0, LineState::Exclusive), VictimPolicy::PlainLru);
        c.insert(line(2, LineState::Exclusive), VictimPolicy::PlainLru);
        let out = c.insert(line(4, LineState::Exclusive), VictimPolicy::PlainLru);
        assert_eq!(out.evicted.unwrap().addr, LineAddr(0), "way 0 was LRU");
        let metas = c.set_metas(0);
        assert_eq!(metas[0].addr, LineAddr(2), "last line moved into the hole");
        assert_eq!(metas[1].addr, LineAddr(4), "new line appended");
    }

    #[test]
    fn victim_policy_prefers_clean_then_dirty_then_safe_spec() {
        let mut c = small_cache();
        let mut spec = line(0, LineState::Exclusive);
        spec.state = LineState::SpecModified;
        spec.mod_vid = Vid(1);
        spec.high_vid = Vid(1);
        c.insert(spec, VictimPolicy::PreferSafeOverflow);
        c.insert(
            line(2, LineState::Modified),
            VictimPolicy::PreferSafeOverflow,
        );
        // Dirty non-spec line is preferred over the S-M line even though the
        // S-M line is older.
        let out = c.insert(
            line(4, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        assert_eq!(out.evicted.unwrap().addr, LineAddr(2));
    }

    #[test]
    fn victim_policy_prefers_safe_overflow_over_unsafe_spec() {
        let mut c = small_cache();
        let mut sm = line(0, LineState::Exclusive);
        sm.state = LineState::SpecModified;
        sm.mod_vid = Vid(2);
        sm.high_vid = Vid(2);
        let mut so = line(2, LineState::Exclusive);
        so.state = LineState::SpecOwned;
        so.high_vid = Vid(2); // modVID 0: overflow-safe
        c.insert(sm, VictimPolicy::PreferSafeOverflow);
        c.insert(so, VictimPolicy::PreferSafeOverflow);
        let out = c.insert(
            line(4, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        assert_eq!(
            out.evicted.unwrap().addr,
            LineAddr(2),
            "S-O(0,2) preferred victim"
        );
    }

    #[test]
    fn take_removes_version() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        let way = c.find_way(LineAddr(0), |_| true).unwrap();
        let l = c.take(0, way);
        assert_eq!(l.addr, LineAddr(0));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn payload_arena_recycles_freed_slots() {
        let mut c = small_cache();
        let mut a = line(0, LineState::Modified);
        a.data.write_u64(0, 7);
        c.insert(a, VictimPolicy::PlainLru);
        let way = c.find_way(LineAddr(0), |_| true).unwrap();
        let taken = c.take(0, way);
        assert_eq!(taken.data.read_u64(0), 7);
        // Reuse the freed arena slot; the old id's generation is stale.
        let mut b = line(2, LineState::Modified);
        b.data.write_u64(0, 9);
        c.insert(b, VictimPolicy::PlainLru);
        let way = c.find_way(LineAddr(2), |_| true).unwrap();
        assert_eq!(c.data(0, way).read_u64(0), 9);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn for_each_line_mut_can_invalidate() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        c.insert(
            line(1, LineState::Modified),
            VictimPolicy::PreferSafeOverflow,
        );
        c.for_each_line_mut(|l, _| {
            if l.state == LineState::Exclusive {
                LineFate::Invalidate
            } else {
                LineFate::Keep
            }
        });
        assert_eq!(c.occupancy(), 1);
        assert!(c.find_way(LineAddr(1), |_| true).is_some());
    }

    #[test]
    fn retain_set_preserves_order_like_vec_retain() {
        let mut c = small_cache();
        // 1 set of interest: set 0 gets lines 0 and 2.
        c.insert(line(0, LineState::Exclusive), VictimPolicy::PlainLru);
        c.insert(line(2, LineState::Shared), VictimPolicy::PlainLru);
        c.retain_set(0, |l| {
            if l.addr == LineAddr(0) {
                LineFate::Invalidate
            } else {
                LineFate::Keep
            }
        });
        let metas = c.set_metas(0);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].addr, LineAddr(2), "survivor compacts to way 0");
        // The freed payload is recycled by the next insert.
        c.insert(line(4, LineState::Exclusive), VictimPolicy::PlainLru);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn commit_epoch_and_lc_vid_registers() {
        let mut c = small_cache();
        assert_eq!(c.commit_epoch(), 0);
        assert_eq!(c.lc_vid(), Vid(0));
        c.bump_commit_epoch();
        c.set_lc_vid(Vid(5));
        assert_eq!(c.commit_epoch(), 1);
        assert_eq!(c.lc_vid(), Vid(5));
    }

    #[test]
    fn capacity_reporting() {
        let c = small_cache();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.config().num_sets(), 2);
    }

    #[test]
    fn debug_output_is_compact_even_for_large_caches() {
        let c = Cache::new(CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 8,
            latency: 10,
        })
        .unwrap();
        let s = format!("{c:?}");
        assert!(s.len() < 500, "Debug must summarize, got {} chars", s.len());
        assert!(s.contains("occupancy"));
    }
}
