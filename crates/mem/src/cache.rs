//! Set-associative caches that hold multiple versions of the same address.

use hmtx_types::{CacheConfig, LineAddr, VictimPolicy, Vid};

use crate::line::{CacheLine, LineState};

/// Result of inserting a line version into a cache.
#[derive(Debug)]
pub struct InsertOutcome {
    /// The victim that had to be evicted to make room, if the set was full.
    /// The protocol layer decides what to do with it (write back to the next
    /// level, spill to memory, or abort, per §5.4).
    pub evicted: Option<CacheLine>,
    /// Set index the line landed in (useful for tests and traces).
    pub set: usize,
}

/// A set-associative, versioned cache.
///
/// Unlike a conventional cache, one set may contain several lines with the
/// *same address* but different `(modVID, highVID)` version ranges (paper
/// §4.1). Lookups therefore take a caller-supplied predicate that encodes
/// the HMTX hit rules.
///
/// The cache also carries the per-cache lazy-commit registers from §5.3:
/// [`lc_vid`](Self::lc_vid) (latest committed VID) and a commit epoch that
/// stands in for the paper's flash-set Committed Bits.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<CacheLine>>,
    lc_vid: Vid,
    commit_epoch: u64,
    lru_clock: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache geometry");
        let sets = (0..cfg.num_sets())
            .map(|_| Vec::with_capacity(cfg.ways))
            .collect();
        Cache {
            cfg,
            sets,
            lc_vid: Vid::NON_SPECULATIVE,
            commit_epoch: 0,
            lru_clock: 0,
        }
    }

    /// The cache geometry and latency.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// The latest committed VID register (LC VID, §5.3).
    pub fn lc_vid(&self) -> Vid {
        self.lc_vid
    }

    /// Updates the LC VID register (called by the protocol on commit
    /// broadcast or VID reset).
    pub fn set_lc_vid(&mut self, vid: Vid) {
        self.lc_vid = vid;
    }

    /// The current commit epoch. A line whose `commit_epoch` is older has
    /// commit processing pending (the lazy-commit stand-in for the paper's
    /// flash-set CB bits).
    pub fn commit_epoch(&self) -> u64 {
        self.commit_epoch
    }

    /// Advances the commit epoch (O(1) commit broadcast, §5.3).
    pub fn bump_commit_epoch(&mut self) {
        self.commit_epoch += 1;
    }

    /// The set index for an address.
    pub fn set_index(&self, addr: LineAddr) -> usize {
        addr.set_index(self.cfg.num_sets())
    }

    /// The versions currently stored in `set`.
    pub fn set_lines(&self, set: usize) -> &[CacheLine] {
        &self.sets[set]
    }

    /// Mutable access to the versions in `set`.
    pub fn set_lines_mut(&mut self, set: usize) -> &mut Vec<CacheLine> {
        &mut self.sets[set]
    }

    /// Finds the way index of the unique version of `addr` in its set
    /// satisfying `pred` (the protocol's hit rule). Updates no LRU state.
    pub fn find_way(&self, addr: LineAddr, pred: impl Fn(&CacheLine) -> bool) -> Option<usize> {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .position(|l| l.addr == addr && pred(l))
    }

    /// All way indices holding versions of `addr`.
    pub fn ways_of(&self, addr: LineAddr) -> Vec<usize> {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .enumerate()
            .filter(|(_, l)| l.addr == addr)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks a way as most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.lru_clock += 1;
        self.sets[set][way].last_used = self.lru_clock;
    }

    /// Removes and returns the version at `(set, way)`.
    pub fn take(&mut self, set: usize, way: usize) -> CacheLine {
        self.sets[set].swap_remove(way)
    }

    /// Inserts a line version, evicting a victim chosen by `policy` if the
    /// set is full. The inserted line becomes most recently used.
    pub fn insert(&mut self, mut line: CacheLine, policy: VictimPolicy) -> InsertOutcome {
        let set = self.set_index(line.addr);
        self.lru_clock += 1;
        line.last_used = self.lru_clock;
        let evicted = if self.sets[set].len() >= self.cfg.ways {
            let victim = choose_victim(&self.sets[set], policy);
            Some(self.sets[set].swap_remove(victim))
        } else {
            None
        };
        self.sets[set].push(line);
        InsertOutcome { evicted, set }
    }

    /// Iterates over every stored line version mutably (used by the eager
    /// commit ablation, abort flush, and VID reset walks).
    pub fn for_each_line_mut(&mut self, mut f: impl FnMut(&mut CacheLine) -> LineFate) {
        for set in &mut self.sets {
            set.retain_mut(|line| match f(line) {
                LineFate::Keep => true,
                LineFate::Invalidate => false,
            });
        }
    }

    /// Total number of line versions currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total number of ways in the cache.
    pub fn capacity(&self) -> usize {
        self.cfg.num_lines()
    }
}

/// Whether a walked line survives (see [`Cache::for_each_line_mut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFate {
    /// Keep the (possibly modified) line.
    Keep,
    /// Drop the line (transition to Invalid).
    Invalidate,
}

/// Chooses an eviction victim among the (full) set per §5.4.
///
/// Preference order for [`VictimPolicy::PreferSafeOverflow`]:
/// 1. non-speculative clean lines (free to drop),
/// 2. non-speculative dirty lines (normal writeback),
/// 3. overflow-safe `S-O(0,·)` lines,
/// 4. anything else (evicting these past the LLC forces an abort),
///
/// breaking ties by LRU. [`VictimPolicy::PlainLru`] ignores state.
fn choose_victim(set: &[CacheLine], policy: VictimPolicy) -> usize {
    assert!(!set.is_empty());
    match policy {
        VictimPolicy::PlainLru => lru_index(set, |_| true),
        VictimPolicy::PreferSafeOverflow => {
            let class = |l: &CacheLine| -> u8 {
                if !l.state.is_speculative() {
                    if l.state.is_dirty() {
                        1
                    } else {
                        0
                    }
                } else if l.state == LineState::SpecOwned && l.mod_vid.is_non_speculative() {
                    2
                } else {
                    3
                }
            };
            let best_class = set.iter().map(&class).min().unwrap();
            lru_index(set, |l| class(l) == best_class)
        }
    }
}

fn lru_index(set: &[CacheLine], pred: impl Fn(&CacheLine) -> bool) -> usize {
    set.iter()
        .enumerate()
        .filter(|(_, l)| pred(l))
        .min_by_key(|(_, l)| l.last_used)
        .map(|(i, _)| i)
        .expect("predicate matched no line")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::CacheConfig;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig {
            size_bytes: 2 * 2 * 64,
            ways: 2,
            latency: 1,
        })
    }

    fn line(addr: u64, state: LineState) -> CacheLine {
        CacheLine::non_speculative(LineAddr(addr), state)
    }

    #[test]
    fn insert_and_find() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        c.insert(line(1, LineState::Shared), VictimPolicy::PreferSafeOverflow);
        assert!(c.find_way(LineAddr(0), |_| true).is_some());
        assert!(c.find_way(LineAddr(1), |_| true).is_some());
        assert!(c.find_way(LineAddr(2), |_| true).is_none());
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn same_address_multiple_versions_coexist() {
        let mut c = small_cache();
        let mut v0 = line(0, LineState::Exclusive);
        v0.state = LineState::SpecOwned;
        v0.high_vid = Vid(1);
        let mut v1 = line(0, LineState::Exclusive);
        v1.state = LineState::SpecModified;
        v1.mod_vid = Vid(1);
        v1.high_vid = Vid(1);
        c.insert(v0, VictimPolicy::PreferSafeOverflow);
        c.insert(v1, VictimPolicy::PreferSafeOverflow);
        assert_eq!(c.ways_of(LineAddr(0)).len(), 2);
    }

    #[test]
    fn lru_eviction_in_plain_mode() {
        let mut c = small_cache();
        // Set 0 holds even line addresses (2 sets).
        c.insert(line(0, LineState::Exclusive), VictimPolicy::PlainLru);
        c.insert(line(2, LineState::Exclusive), VictimPolicy::PlainLru);
        // Touch line 0 so line 2 is LRU.
        let way = c.find_way(LineAddr(0), |_| true).unwrap();
        c.touch(0, way);
        let out = c.insert(line(4, LineState::Exclusive), VictimPolicy::PlainLru);
        let evicted = out.evicted.expect("set was full");
        assert_eq!(evicted.addr, LineAddr(2));
    }

    #[test]
    fn victim_policy_prefers_clean_then_dirty_then_safe_spec() {
        let mut c = small_cache();
        let mut spec = line(0, LineState::Exclusive);
        spec.state = LineState::SpecModified;
        spec.mod_vid = Vid(1);
        spec.high_vid = Vid(1);
        c.insert(spec, VictimPolicy::PreferSafeOverflow);
        c.insert(
            line(2, LineState::Modified),
            VictimPolicy::PreferSafeOverflow,
        );
        // Dirty non-spec line is preferred over the S-M line even though the
        // S-M line is older.
        let out = c.insert(
            line(4, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        assert_eq!(out.evicted.unwrap().addr, LineAddr(2));
    }

    #[test]
    fn victim_policy_prefers_safe_overflow_over_unsafe_spec() {
        let mut c = small_cache();
        let mut sm = line(0, LineState::Exclusive);
        sm.state = LineState::SpecModified;
        sm.mod_vid = Vid(2);
        sm.high_vid = Vid(2);
        let mut so = line(2, LineState::Exclusive);
        so.state = LineState::SpecOwned;
        so.high_vid = Vid(2); // modVID 0: overflow-safe
        c.insert(sm, VictimPolicy::PreferSafeOverflow);
        c.insert(so, VictimPolicy::PreferSafeOverflow);
        let out = c.insert(
            line(4, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        assert_eq!(
            out.evicted.unwrap().addr,
            LineAddr(2),
            "S-O(0,2) preferred victim"
        );
    }

    #[test]
    fn take_removes_version() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        let way = c.find_way(LineAddr(0), |_| true).unwrap();
        let l = c.take(0, way);
        assert_eq!(l.addr, LineAddr(0));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn for_each_line_mut_can_invalidate() {
        let mut c = small_cache();
        c.insert(
            line(0, LineState::Exclusive),
            VictimPolicy::PreferSafeOverflow,
        );
        c.insert(
            line(1, LineState::Modified),
            VictimPolicy::PreferSafeOverflow,
        );
        c.for_each_line_mut(|l| {
            if l.state == LineState::Exclusive {
                LineFate::Invalidate
            } else {
                LineFate::Keep
            }
        });
        assert_eq!(c.occupancy(), 1);
        assert!(c.find_way(LineAddr(1), |_| true).is_some());
    }

    #[test]
    fn commit_epoch_and_lc_vid_registers() {
        let mut c = small_cache();
        assert_eq!(c.commit_epoch(), 0);
        assert_eq!(c.lc_vid(), Vid(0));
        c.bump_commit_epoch();
        c.set_lc_vid(Vid(5));
        assert_eq!(c.commit_epoch(), 1);
        assert_eq!(c.lc_vid(), Vid(5));
    }

    #[test]
    fn capacity_reporting() {
        let c = small_cache();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.config().num_sets(), 2);
    }
}
