//! Cache lines with HMTX version metadata.
//!
//! Storage is split ECS-style: [`LineMeta`] is the plain-old-data tag/VID
//! component the protocol scans and mutates on every access, and
//! [`LineData`] is the 64-byte payload component, stored separately (see
//! [`Cache`](crate::Cache)'s payload arena). [`CacheLine`] glues the two
//! back together as the by-value exchange type used when a line moves
//! between caches, the overflow table, or main memory; it derefs to its
//! [`LineMeta`] so metadata fields read naturally (`line.addr`,
//! `line.state`, ...).

use std::fmt;
use std::ops::{Deref, DerefMut};

use hmtx_types::{LineAddr, Vid, LINE_SIZE};

/// Coherence state of one cache-line version.
///
/// The non-speculative states are the classic MOESI states (Invalid lines are
/// simply absent from the cache, so there is no `Invalid` variant). The
/// speculative states are the four HMTX additions from §4.1 of the paper.
///
/// `repr(u8)` with variant 0 first keeps an all-zero-bytes [`LineMeta`]
/// valid, which is what lets the cache allocate its flat metadata arrays as
/// untouched zero pages (see `Cache::new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LineState {
    /// MOESI Modified: dirty, exclusive, writable.
    Modified = 0,
    /// MOESI Owned: dirty, shared, read-only, responds to snoops.
    Owned = 1,
    /// MOESI Exclusive: clean, exclusive, writable.
    Exclusive = 2,
    /// MOESI Shared: clean, shared, read-only.
    Shared = 3,
    /// S-M: the *latest* speculative version of the line (paper §4.1).
    /// Dirty with respect to memory; commits to [`LineState::Modified`].
    SpecModified = 4,
    /// S-O: a speculatively accessed version later superseded by a write
    /// with a higher VID. Holds the data that accesses with VIDs in
    /// `[modVID, highVID)` must observe.
    SpecOwned = 5,
    /// S-E: like S-M but never modified since entering the cache
    /// (`modVID` is always zero); commits to a clean state.
    SpecExclusive = 6,
    /// S-S: a shared copy of a speculatively accessed version; never
    /// responds to snoops (an S-M/S-O/S-E copy responds instead).
    SpecShared = 7,
}

impl LineState {
    /// Returns `true` for the four HMTX speculative states.
    pub fn is_speculative(self) -> bool {
        matches!(
            self,
            LineState::SpecModified
                | LineState::SpecOwned
                | LineState::SpecExclusive
                | LineState::SpecShared
        )
    }

    /// Returns `true` if this version must eventually reach memory
    /// (dirty with respect to main memory) when it is the live version.
    pub fn is_dirty(self) -> bool {
        matches!(
            self,
            LineState::Modified | LineState::Owned | LineState::SpecModified | LineState::SpecOwned
        )
    }

    /// Returns `true` if a write may proceed without gaining exclusivity.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Returns `true` if this copy answers bus snoops (S-S and MOESI Shared
    /// stay silent; some owner copy or the next level answers instead).
    pub fn responds_to_snoops(self) -> bool {
        !matches!(self, LineState::SpecShared | LineState::Shared)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Modified => "M",
            LineState::Owned => "O",
            LineState::Exclusive => "E",
            LineState::Shared => "S",
            LineState::SpecModified => "S-M",
            LineState::SpecOwned => "S-O",
            LineState::SpecExclusive => "S-E",
            LineState::SpecShared => "S-S",
        };
        f.write_str(s)
    }
}

/// The 64 bytes of data held by one cache-line version.
///
/// Stored inline (not boxed): cloning a payload is a 64-byte copy with no
/// allocation, which is what makes version splits, peer supplies, and
/// memory fills allocation-free on the hot path.
#[derive(Clone, PartialEq, Eq)]
pub struct LineData([u8; LINE_SIZE]);

impl LineData {
    /// All-zero line (the content of never-written memory).
    pub fn zeroed() -> Self {
        LineData([0u8; LINE_SIZE])
    }

    /// Reads the aligned little-endian u64 at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8 > 64`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.0[offset..offset + 8].try_into().unwrap())
    }

    /// Writes the little-endian u64 at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8 > 64`.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.0[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; LINE_SIZE] {
        &self.0
    }

    /// The raw bytes, mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8; LINE_SIZE] {
        &mut self.0
    }
}

impl Default for LineData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 64 raw bytes are noise; show the 8 words.
        write!(f, "LineData[")?;
        for w in 0..8 {
            if w > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:x}", self.read_u64(w * 8))?;
        }
        write!(f, "]")
    }
}

impl From<[u8; LINE_SIZE]> for LineData {
    fn from(bytes: [u8; LINE_SIZE]) -> Self {
        LineData(bytes)
    }
}

/// The tag/VID metadata of one cache-line *version* — everything the
/// protocol's scans, hit rules, and commit/abort transitions touch, and
/// nothing else. Plain old data, `Copy`, 48 bytes: a whole cache set's
/// metadata fits in a few hardware cache lines, so the per-access set walks
/// never chase a pointer.
///
/// The pair `(modVID, highVID)` follows §4.1: `modVID` is the VID of the
/// speculative write that created this version (zero for non-speculative
/// versions) and `highVID` is the highest VID that accessed it.
/// `phantom_high` is *not* hardware state: it records wrong-path
/// (branch-speculative) marks that SLAs filtered out, used to count the
/// aborts the SLA mechanism avoided (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// The line address of this version.
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// VID of the speculative write that created this version (`m`).
    pub mod_vid: Vid,
    /// Highest VID that accessed this version (`h`).
    pub high_vid: Vid,
    /// Highest wrong-path VID that *would have* marked this line were SLAs
    /// not filtering squashed loads (simulator-only bookkeeping, §5.1).
    pub phantom_high: Vid,
    /// Set once this cache supplied the line to a peer, so in-place
    /// speculative writes know to invalidate stale S-S copies.
    pub shared_hint: bool,
    /// Lazy commit processing stamp (§5.3); compared against the owning
    /// cache's commit epoch.
    pub commit_epoch: u64,
    /// LRU recency stamp.
    pub last_used: u64,
}

impl LineMeta {
    /// Non-speculative metadata in the given MOESI state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is speculative.
    pub fn non_speculative(addr: LineAddr, state: LineState) -> Self {
        assert!(
            !state.is_speculative(),
            "use LineMeta fields for speculative versions"
        );
        LineMeta {
            addr,
            state,
            mod_vid: Vid::NON_SPECULATIVE,
            high_vid: Vid::NON_SPECULATIVE,
            phantom_high: Vid::NON_SPECULATIVE,
            shared_hint: false,
            commit_epoch: 0,
            last_used: 0,
        }
    }

    /// The `(modVID, highVID)` tuple in the paper's notation.
    pub fn vids(&self) -> (Vid, Vid) {
        (self.mod_vid, self.high_vid)
    }

    /// Formats the version as e.g. `S-M(2,2)` for traces and tests
    /// (matching Figure 5 of the paper).
    pub fn describe(&self) -> String {
        format!("{}({},{})", self.state, self.mod_vid.0, self.high_vid.0)
    }

    /// Returns `true` if evicting this version past the last-level cache is
    /// safe (§5.4): only non-speculative versions and `S-O` versions with
    /// `modVID == 0` may leave the cache hierarchy without aborting.
    pub fn safe_to_overflow(&self) -> bool {
        !self.state.is_speculative()
            || (self.state == LineState::SpecOwned && self.mod_vid.is_non_speculative())
    }
}

/// One cache-line *version* as a by-value whole: metadata plus payload.
///
/// This is the exchange currency between caches, the §8 overflow table, and
/// main memory. Inside a [`Cache`](crate::Cache) the two halves live in
/// separate flat arrays; `CacheLine` is only assembled when a version
/// actually moves. It derefs to [`LineMeta`], so all metadata fields and
/// helpers ([`describe`](LineMeta::describe),
/// [`safe_to_overflow`](LineMeta::safe_to_overflow), ...) apply directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine {
    /// Tag/VID metadata.
    pub meta: LineMeta,
    /// The 64 data bytes of this version.
    pub data: LineData,
}

impl CacheLine {
    /// Creates a non-speculative line version in the given MOESI state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is speculative.
    pub fn non_speculative(addr: LineAddr, state: LineState) -> Self {
        CacheLine {
            meta: LineMeta::non_speculative(addr, state),
            data: LineData::zeroed(),
        }
    }
}

impl Deref for CacheLine {
    type Target = LineMeta;

    fn deref(&self) -> &LineMeta {
        &self.meta
    }
}

impl DerefMut for CacheLine {
    fn deref_mut(&mut self) -> &mut LineMeta {
        &mut self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(LineState::SpecModified.is_speculative());
        assert!(LineState::SpecShared.is_speculative());
        assert!(!LineState::Modified.is_speculative());
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(LineState::SpecModified.is_dirty());
        assert!(LineState::SpecOwned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::SpecExclusive.is_dirty());
        assert!(LineState::Modified.is_writable());
        assert!(LineState::Exclusive.is_writable());
        assert!(!LineState::Owned.is_writable());
        assert!(
            !LineState::SpecModified.is_writable(),
            "spec writes go through protocol checks"
        );
        assert!(!LineState::SpecShared.responds_to_snoops());
        assert!(!LineState::Shared.responds_to_snoops());
        assert!(LineState::SpecModified.responds_to_snoops());
        assert!(LineState::Owned.responds_to_snoops());
    }

    #[test]
    fn state_display_matches_paper_notation() {
        assert_eq!(LineState::SpecModified.to_string(), "S-M");
        assert_eq!(LineState::SpecOwned.to_string(), "S-O");
        assert_eq!(LineState::SpecExclusive.to_string(), "S-E");
        assert_eq!(LineState::SpecShared.to_string(), "S-S");
        assert_eq!(LineState::Modified.to_string(), "M");
    }

    #[test]
    fn line_data_word_access() {
        let mut d = LineData::zeroed();
        d.write_u64(8, 0xdead_beef);
        assert_eq!(d.read_u64(8), 0xdead_beef);
        assert_eq!(d.read_u64(0), 0);
        assert_eq!(d.read_u64(16), 0);
        d.write_u64(56, u64::MAX);
        assert_eq!(d.read_u64(56), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn line_data_out_of_range_panics() {
        LineData::zeroed().read_u64(57);
    }

    #[test]
    fn describe_matches_figure5_notation() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Exclusive);
        assert_eq!(l.describe(), "E(0,0)");
        l.state = LineState::SpecModified;
        l.mod_vid = Vid(2);
        l.high_vid = Vid(2);
        assert_eq!(l.describe(), "S-M(2,2)");
    }

    #[test]
    fn overflow_safety_rule() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Modified);
        assert!(l.safe_to_overflow());
        l.state = LineState::SpecOwned;
        assert!(l.safe_to_overflow(), "S-O with modVID 0 is overflow-safe");
        l.mod_vid = Vid(1);
        assert!(!l.safe_to_overflow(), "S-O with modVID > 0 is not");
        l.state = LineState::SpecModified;
        l.mod_vid = Vid::NON_SPECULATIVE;
        assert!(!l.safe_to_overflow(), "S-M never overflows safely");
    }

    #[test]
    #[should_panic]
    fn non_speculative_ctor_rejects_spec_states() {
        let _ = CacheLine::non_speculative(LineAddr(0), LineState::SpecModified);
    }

    #[test]
    fn line_data_debug_is_compact() {
        let mut d = LineData::zeroed();
        d.write_u64(0, 0xab);
        let s = format!("{d:?}");
        assert!(s.starts_with("LineData["));
        assert!(s.contains("ab"));
    }

    #[test]
    fn meta_is_all_zero_valid_and_pod_sized() {
        // The cache's flat arrays rely on zeroed `LineMeta` being a valid
        // (if meaningless) value: `LineState` discriminant 0 is `Modified`.
        assert_eq!(LineState::Modified as u8, 0);
        // Keep the scanned component compact: a whole 8-way set of metadata
        // should span at most a handful of hardware cache lines.
        assert!(std::mem::size_of::<LineMeta>() <= 48);
    }

    #[test]
    fn cache_line_derefs_to_meta() {
        let mut l = CacheLine::non_speculative(LineAddr(3), LineState::Shared);
        assert_eq!(l.addr, LineAddr(3));
        l.high_vid = Vid(4);
        assert_eq!(l.meta.high_vid, Vid(4));
        assert_eq!(l.vids(), (Vid(0), Vid(4)));
    }
}
