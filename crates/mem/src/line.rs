//! Cache lines with HMTX version metadata.

use std::fmt;

use hmtx_types::{LineAddr, Vid, LINE_SIZE};

/// Coherence state of one cache-line version.
///
/// The non-speculative states are the classic MOESI states (Invalid lines are
/// simply absent from the cache, so there is no `Invalid` variant). The
/// speculative states are the four HMTX additions from §4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// MOESI Modified: dirty, exclusive, writable.
    Modified,
    /// MOESI Owned: dirty, shared, read-only, responds to snoops.
    Owned,
    /// MOESI Exclusive: clean, exclusive, writable.
    Exclusive,
    /// MOESI Shared: clean, shared, read-only.
    Shared,
    /// S-M: the *latest* speculative version of the line (paper §4.1).
    /// Dirty with respect to memory; commits to [`LineState::Modified`].
    SpecModified,
    /// S-O: a speculatively accessed version later superseded by a write
    /// with a higher VID. Holds the data that accesses with VIDs in
    /// `[modVID, highVID)` must observe.
    SpecOwned,
    /// S-E: like S-M but never modified since entering the cache
    /// (`modVID` is always zero); commits to a clean state.
    SpecExclusive,
    /// S-S: a shared copy of a speculatively accessed version; never
    /// responds to snoops (an S-M/S-O/S-E copy responds instead).
    SpecShared,
}

impl LineState {
    /// Returns `true` for the four HMTX speculative states.
    pub fn is_speculative(self) -> bool {
        matches!(
            self,
            LineState::SpecModified
                | LineState::SpecOwned
                | LineState::SpecExclusive
                | LineState::SpecShared
        )
    }

    /// Returns `true` if this version must eventually reach memory
    /// (dirty with respect to main memory) when it is the live version.
    pub fn is_dirty(self) -> bool {
        matches!(
            self,
            LineState::Modified | LineState::Owned | LineState::SpecModified | LineState::SpecOwned
        )
    }

    /// Returns `true` if a write may proceed without gaining exclusivity.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Returns `true` if this copy answers bus snoops (S-S and MOESI Shared
    /// stay silent; some owner copy or the next level answers instead).
    pub fn responds_to_snoops(self) -> bool {
        !matches!(self, LineState::SpecShared | LineState::Shared)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Modified => "M",
            LineState::Owned => "O",
            LineState::Exclusive => "E",
            LineState::Shared => "S",
            LineState::SpecModified => "S-M",
            LineState::SpecOwned => "S-O",
            LineState::SpecExclusive => "S-E",
            LineState::SpecShared => "S-S",
        };
        f.write_str(s)
    }
}

/// The 64 bytes of data held by one cache-line version.
#[derive(Clone, PartialEq, Eq)]
pub struct LineData(Box<[u8; LINE_SIZE]>);

impl LineData {
    /// All-zero line (the content of never-written memory).
    pub fn zeroed() -> Self {
        LineData(Box::new([0u8; LINE_SIZE]))
    }

    /// Reads the aligned little-endian u64 at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8 > 64`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.0[offset..offset + 8].try_into().unwrap())
    }

    /// Writes the little-endian u64 at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8 > 64`.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.0[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; LINE_SIZE] {
        &self.0
    }

    /// The raw bytes, mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8; LINE_SIZE] {
        &mut self.0
    }
}

impl Default for LineData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 64 raw bytes are noise; show the 8 words.
        write!(f, "LineData[")?;
        for w in 0..8 {
            if w > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:x}", self.read_u64(w * 8))?;
        }
        write!(f, "]")
    }
}

impl From<[u8; LINE_SIZE]> for LineData {
    fn from(bytes: [u8; LINE_SIZE]) -> Self {
        LineData(Box::new(bytes))
    }
}

/// One cache-line *version* stored in a cache way.
///
/// The pair `(modVID, highVID)` follows §4.1: `modVID` is the VID of the
/// speculative write that created this version (zero for non-speculative
/// versions) and `highVID` is the highest VID that accessed it.
/// `phantom_high` is *not* hardware state: it records wrong-path
/// (branch-speculative) marks that SLAs filtered out, used to count the
/// aborts the SLA mechanism avoided (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine {
    /// The line address of this version.
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// VID of the speculative write that created this version (`m`).
    pub mod_vid: Vid,
    /// Highest VID that accessed this version (`h`).
    pub high_vid: Vid,
    /// Highest wrong-path VID that *would have* marked this line were SLAs
    /// not filtering squashed loads (simulator-only bookkeeping, §5.1).
    pub phantom_high: Vid,
    /// Set once this cache supplied the line to a peer, so in-place
    /// speculative writes know to invalidate stale S-S copies.
    pub shared_hint: bool,
    /// Lazy commit processing stamp (§5.3); compared against the owning
    /// cache's commit epoch.
    pub commit_epoch: u64,
    /// LRU recency stamp.
    pub last_used: u64,
    /// The 64 data bytes of this version.
    pub data: LineData,
}

impl CacheLine {
    /// Creates a non-speculative line version in the given MOESI state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is speculative.
    pub fn non_speculative(addr: LineAddr, state: LineState) -> Self {
        assert!(
            !state.is_speculative(),
            "use CacheLine fields for speculative versions"
        );
        CacheLine {
            addr,
            state,
            mod_vid: Vid::NON_SPECULATIVE,
            high_vid: Vid::NON_SPECULATIVE,
            phantom_high: Vid::NON_SPECULATIVE,
            shared_hint: false,
            commit_epoch: 0,
            last_used: 0,
            data: LineData::zeroed(),
        }
    }

    /// The `(modVID, highVID)` tuple in the paper's notation.
    pub fn vids(&self) -> (Vid, Vid) {
        (self.mod_vid, self.high_vid)
    }

    /// Formats the version as e.g. `S-M(2,2)` for traces and tests
    /// (matching Figure 5 of the paper).
    pub fn describe(&self) -> String {
        format!("{}({},{})", self.state, self.mod_vid.0, self.high_vid.0)
    }

    /// Returns `true` if evicting this version past the last-level cache is
    /// safe (§5.4): only non-speculative versions and `S-O` versions with
    /// `modVID == 0` may leave the cache hierarchy without aborting.
    pub fn safe_to_overflow(&self) -> bool {
        !self.state.is_speculative()
            || (self.state == LineState::SpecOwned && self.mod_vid.is_non_speculative())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(LineState::SpecModified.is_speculative());
        assert!(LineState::SpecShared.is_speculative());
        assert!(!LineState::Modified.is_speculative());
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(LineState::SpecModified.is_dirty());
        assert!(LineState::SpecOwned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::SpecExclusive.is_dirty());
        assert!(LineState::Modified.is_writable());
        assert!(LineState::Exclusive.is_writable());
        assert!(!LineState::Owned.is_writable());
        assert!(
            !LineState::SpecModified.is_writable(),
            "spec writes go through protocol checks"
        );
        assert!(!LineState::SpecShared.responds_to_snoops());
        assert!(!LineState::Shared.responds_to_snoops());
        assert!(LineState::SpecModified.responds_to_snoops());
        assert!(LineState::Owned.responds_to_snoops());
    }

    #[test]
    fn state_display_matches_paper_notation() {
        assert_eq!(LineState::SpecModified.to_string(), "S-M");
        assert_eq!(LineState::SpecOwned.to_string(), "S-O");
        assert_eq!(LineState::SpecExclusive.to_string(), "S-E");
        assert_eq!(LineState::SpecShared.to_string(), "S-S");
        assert_eq!(LineState::Modified.to_string(), "M");
    }

    #[test]
    fn line_data_word_access() {
        let mut d = LineData::zeroed();
        d.write_u64(8, 0xdead_beef);
        assert_eq!(d.read_u64(8), 0xdead_beef);
        assert_eq!(d.read_u64(0), 0);
        assert_eq!(d.read_u64(16), 0);
        d.write_u64(56, u64::MAX);
        assert_eq!(d.read_u64(56), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn line_data_out_of_range_panics() {
        LineData::zeroed().read_u64(57);
    }

    #[test]
    fn describe_matches_figure5_notation() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Exclusive);
        assert_eq!(l.describe(), "E(0,0)");
        l.state = LineState::SpecModified;
        l.mod_vid = Vid(2);
        l.high_vid = Vid(2);
        assert_eq!(l.describe(), "S-M(2,2)");
    }

    #[test]
    fn overflow_safety_rule() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Modified);
        assert!(l.safe_to_overflow());
        l.state = LineState::SpecOwned;
        assert!(l.safe_to_overflow(), "S-O with modVID 0 is overflow-safe");
        l.mod_vid = Vid(1);
        assert!(!l.safe_to_overflow(), "S-O with modVID > 0 is not");
        l.state = LineState::SpecModified;
        l.mod_vid = Vid::NON_SPECULATIVE;
        assert!(!l.safe_to_overflow(), "S-M never overflows safely");
    }

    #[test]
    #[should_panic]
    fn non_speculative_ctor_rejects_spec_states() {
        let _ = CacheLine::non_speculative(LineAddr(0), LineState::SpecModified);
    }

    #[test]
    fn line_data_debug_is_compact() {
        let mut d = LineData::zeroed();
        d.write_u64(0, 0xab);
        let s = format!("{d:?}");
        assert!(s.starts_with("LineData["));
        assert!(s.contains("ab"));
    }
}
