//! Sparse main memory backing the cache hierarchy.

use hmtx_types::{hash::FxHashMap, Addr, LineAddr};

use crate::line::LineData;

/// Main memory, stored sparsely by line. Never-written lines read as zero.
///
/// Main memory only ever holds *committed* (non-speculative) data: the
/// protocol layer guarantees that nothing except committed lines and
/// overflow-safe `S-O(0,·)` data (which is by definition the pre-speculative
/// committed image, §5.4) is written back here.
///
/// # Examples
///
/// ```
/// use hmtx_mem::MainMemory;
/// use hmtx_types::{Addr, LineAddr};
///
/// let mut mem = MainMemory::new();
/// assert_eq!(mem.read_line(LineAddr(5)).read_u64(0), 0);
/// mem.write_word(Addr(0x140), 7);
/// assert_eq!(mem.read_word(Addr(0x140)), 7);
/// ```
#[derive(Debug, Default, Clone)]
pub struct MainMemory {
    // Fx-hashed: line addresses are simulator-internal small integers, and
    // this map sits on the miss path of every simulated memory access.
    lines: FxHashMap<LineAddr, LineData>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a whole line (zero if never written).
    pub fn read_line(&mut self, addr: LineAddr) -> LineData {
        self.reads += 1;
        self.lines.get(&addr).cloned().unwrap_or_default()
    }

    /// Writes a whole line back.
    pub fn write_line(&mut self, addr: LineAddr, data: LineData) {
        self.writes += 1;
        self.lines.insert(addr, data);
    }

    /// Reads the aligned u64 at `addr` directly (bypassing caches; used for
    /// initial image construction and end-of-run verification, not by the
    /// simulated machine).
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.lines
            .get(&addr.line())
            .map(|d| d.read_u64(addr.line_offset()))
            .unwrap_or(0)
    }

    /// Writes the aligned u64 at `addr` directly (bypassing caches).
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.lines
            .entry(addr.line())
            .or_default()
            .write_u64(addr.line_offset(), value);
    }

    /// Number of lines that were ever written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// `(reads, writes)` performed through the cached interface.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// A stable fingerprint of the full memory image, for comparing the
    /// final state of two runs (sequential oracle vs speculative parallel).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_range(Addr(0), Addr(u64::MAX))
    }

    /// A stable fingerprint of the lines whose base addresses fall in
    /// `[lo, hi)` — e.g. just the workload data region, excluding runtime
    /// bookkeeping words that legitimately differ between execution models.
    pub fn fingerprint_range(&self, lo: Addr, hi: Addr) -> u64 {
        // FNV-1a over (addr, data) in sorted order for determinism.
        let mut entries: Vec<_> = self
            .lines
            .iter()
            .filter(|(a, _)| a.base().0 >= lo.0 && a.base().0 < hi.0)
            .collect();
        entries.sort_by_key(|(a, _)| a.0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (addr, data) in entries {
            // Skip all-zero lines: absent and zeroed lines are equivalent.
            if data.bytes().iter().all(|&b| b == 0) {
                continue;
            }
            for chunk in addr.0.to_le_bytes().iter().chain(data.bytes().iter()) {
                h ^= u64::from(*chunk);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_reads() {
        let mut m = MainMemory::new();
        assert_eq!(m.read_line(LineAddr(9)).read_u64(16), 0);
        assert_eq!(m.read_word(Addr(0x999 & !7)), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut m = MainMemory::new();
        m.write_word(Addr(0x40), 1);
        m.write_word(Addr(0x48), 2);
        assert_eq!(m.read_word(Addr(0x40)), 1);
        assert_eq!(m.read_word(Addr(0x48)), 2);
        assert_eq!(m.resident_lines(), 1);
    }

    #[test]
    fn line_round_trip_counts_traffic() {
        let mut m = MainMemory::new();
        let mut d = LineData::zeroed();
        d.write_u64(0, 42);
        m.write_line(LineAddr(3), d);
        assert_eq!(m.read_line(LineAddr(3)).read_u64(0), 42);
        assert_eq!(m.traffic(), (1, 1));
    }

    #[test]
    fn fingerprint_detects_differences_and_ignores_zero_lines() {
        let mut a = MainMemory::new();
        let mut b = MainMemory::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write_word(Addr(0x100), 5);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.write_word(Addr(0x100), 5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Writing an explicit zero line doesn't change the fingerprint.
        b.write_line(LineAddr(77), LineData::zeroed());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mut a = MainMemory::new();
        let mut b = MainMemory::new();
        a.write_word(Addr(0x40), 1);
        a.write_word(Addr(0x80), 2);
        b.write_word(Addr(0x80), 2);
        b.write_word(Addr(0x40), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
