//! Memory-system substrate for the HMTX reproduction: versioned cache lines,
//! set-associative caches that can hold *multiple versions of the same
//! address* in one set, victim selection policies, a snoopy bus, and main
//! memory.
//!
//! This crate provides the *mechanism*; the HMTX coherence *policy* (the
//! paper's contribution — speculative states, hit predicates, commit/abort
//! state machines) lives in the `hmtx-core` crate and drives these
//! structures.
//!
//! # Examples
//!
//! ```
//! use hmtx_mem::{Cache, CacheLine, LineState};
//! use hmtx_types::{CacheConfig, LineAddr, VictimPolicy};
//!
//! let mut cache = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, latency: 2 }).unwrap();
//! let line = CacheLine::non_speculative(LineAddr(3), LineState::Exclusive);
//! assert!(cache.insert(line, VictimPolicy::PreferSafeOverflow).evicted.is_none());
//! assert!(cache.find_way(LineAddr(3), |l| l.state == LineState::Exclusive).is_some());
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod line;
pub mod memory;

pub use bus::Bus;
pub use cache::{AbstractLine, Cache, InsertOutcome};
pub use line::{CacheLine, LineData, LineMeta, LineState};
pub use memory::MainMemory;
