//! The shared snoopy bus connecting the L1 caches and the L2.

use hmtx_types::Cycle;

/// A single shared bus with fixed per-transaction occupancy.
///
/// Requests serialize: a request arriving while the bus is busy waits until
/// the previous transaction completes. The protocol layer asks the bus when
/// a transaction issued `now` would *finish*, which includes queueing delay.
///
/// # Examples
///
/// ```
/// use hmtx_mem::Bus;
/// let mut bus = Bus::new(4);
/// assert_eq!(bus.acquire(100), 104); // idle bus: occupancy only
/// assert_eq!(bus.acquire(100), 108); // second request queues behind it
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    occupancy: u64,
    free_at: Cycle,
    transactions: u64,
    busy_cycles: u64,
}

impl Bus {
    /// Creates an idle bus with the given per-transaction occupancy.
    pub fn new(occupancy: u64) -> Self {
        Bus {
            occupancy,
            free_at: 0,
            transactions: 0,
            busy_cycles: 0,
        }
    }

    /// Acquires the bus for one transaction issued at `now`; returns the
    /// cycle at which the transaction completes (including queueing).
    pub fn acquire(&mut self, now: Cycle) -> Cycle {
        let start = self.free_at.max(now);
        self.free_at = start + self.occupancy;
        self.transactions += 1;
        self.busy_cycles += self.occupancy;
        self.free_at
    }

    /// The cycle at which the bus becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total transactions issued (for bandwidth statistics).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles the bus spent occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_charges_occupancy_only() {
        let mut b = Bus::new(4);
        assert_eq!(b.acquire(10), 14);
    }

    #[test]
    fn contended_bus_serializes() {
        let mut b = Bus::new(4);
        assert_eq!(b.acquire(0), 4);
        assert_eq!(b.acquire(1), 8);
        assert_eq!(b.acquire(2), 12);
        // After the backlog drains the bus is free again.
        assert_eq!(b.acquire(100), 104);
    }

    #[test]
    fn statistics_accumulate() {
        let mut b = Bus::new(2);
        b.acquire(0);
        b.acquire(0);
        assert_eq!(b.transactions(), 2);
        assert_eq!(b.busy_cycles(), 4);
        assert_eq!(b.free_at(), 4);
    }
}
