//! Static MTX well-formedness and race analyzer for HMTX mini-ISA programs.
//!
//! This crate builds a control-flow graph and a joint constant/definedness/
//! MTX-protocol dataflow over [`hmtx_isa::Program`]s and reports
//! [`Diagnostic`]s for protocol misuse (unbalanced or clobbered
//! transactions, §4.5/§4.6 reset misplacement), register discipline
//! (use-before-def), hardware-queue deadlocks and rate mismatches, and
//! speculative-store escapes. It is the engine behind the `hmtx-verify`
//! binary, `runtime::build_paradigm_verified`, and the
//! [`BuildVerified`] builder hook.
//!
//! Two entry points:
//!
//! * [`verify_program`] — per-program rules only. Safe on a fragment that
//!   is one stage of a pipeline (queue matching and set-wide commit
//!   obligations are *not* checked, since the peers are absent).
//! * [`verify_set`] — everything, treating program `i` as core `i`, the way
//!   `runtime::run_loop` launches a paradigm's threads.
//!
//! The analysis is conservative in both directions by design — see
//! `DESIGN.md` ("Static validation layer") for the exact/approximate split
//! per rule. The acceptance bar is: zero diagnostics on every shipped
//! workload emitter, and every rule demonstrably firing on the negative
//! corpus in `tests/verify_workloads.rs`.
//!
//! # Examples
//!
//! ```
//! use hmtx_analysis::{verify_set, BuildVerified};
//! use hmtx_isa::{ProgramBuilder, Reg};
//!
//! // A transaction that can never commit: halting while speculative.
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::R1, 1);
//! b.begin_mtx(Reg::R1);
//! b.halt();
//! let p = b.build().unwrap();
//! let report = verify_set(&[&p]);
//! // Two errors: the halt itself, and the set-wide commit obligation.
//! assert_eq!(report.error_count(), 2);
//! assert_eq!(report.diagnostics[0].rule, "mtx-never-committed");
//! assert_eq!(report.diagnostics[1].rule, "mtx-halt-speculative");
//!
//! // The same program through the opt-in builder hook.
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::R1, 1);
//! b.begin_mtx(Reg::R1);
//! b.halt();
//! assert!(b.build_verified().is_err());
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod corpus;
pub mod dataflow;
pub mod escape;
pub mod mtx;
pub mod queues;
pub mod report;

use hmtx_isa::{Program, ProgramBuilder};
use hmtx_types::{Diagnostic, Severity, SimError};

pub use cfg::{Block, Cfg};
pub use corpus::{lower_counterexample, model_counterexamples, CounterOp, ModelCounterexample};
pub use dataflow::{AbsVal, MtxState, State};
pub use mtx::{ProgramFacts, QueueOpFact, QueueOpKind, StoreFact};
pub use report::VerifyReport;

/// Verifies a single program with the per-program rules (MTX protocol,
/// register discipline). Set-level rules — queue matching, deadlock, rates,
/// store escape, and the "somebody must commit" obligation — are skipped:
/// on a lone pipeline stage they would be false positives.
pub fn verify_program(program: &Program) -> VerifyReport {
    let cfg = Cfg::build(program);
    let mut diags = Vec::new();
    let _ = mtx::analyze_program(0, program, &cfg, &mut diags);
    VerifyReport::new(diags, vec![cfg])
}

/// Verifies a complete program set; program `i` runs on core `i`. Runs
/// every rule, per-program and set-level.
pub fn verify_set(programs: &[&Program]) -> VerifyReport {
    let cfgs: Vec<Cfg> = programs.iter().map(|p| Cfg::build(p)).collect();
    let mut diags = Vec::new();
    let facts: Vec<ProgramFacts> = programs
        .iter()
        .zip(cfgs.iter())
        .enumerate()
        .map(|(core, (p, cfg))| mtx::analyze_program(core, p, cfg, &mut diags))
        .collect();

    // Set-level commit obligation: if any core opens a speculative MTX,
    // *some* core in the set must be able to commit or abort — otherwise
    // the window of uncommitted VIDs only grows and the run livelocks.
    // Per-core balance would be wrong: PS-DSWP stage 1 begins transactions
    // its consumers commit.
    let any_commit = facts.iter().any(|f| f.has_commit_or_abort);
    if !any_commit {
        if let Some((core, pc)) = facts
            .iter()
            .enumerate()
            .find_map(|(c, f)| f.first_spec_begin.map(|pc| (c, pc)))
        {
            diags.push(Diagnostic {
                severity: Severity::Error,
                rule: "mtx-never-committed",
                core,
                pc,
                message: "a speculative MTX begins here but no program in the set contains \
                          commitMTX or abortMTX; the transaction can never retire"
                    .to_string(),
            });
        }
    }

    queues::check_set(programs, &cfgs, &facts, &mut diags);
    escape::check_set(&facts, &mut diags);
    VerifyReport::new(diags, cfgs)
}

/// Opt-in extension: build a [`ProgramBuilder`] and statically verify the
/// result in one step. Lives here (not on the builder) because `hmtx-isa`
/// cannot depend on the analysis that depends on it.
pub trait BuildVerified {
    /// Resolves labels like [`ProgramBuilder::build`], then rejects the
    /// program with [`SimError::Verification`] if the per-program verifier
    /// reports *any* diagnostic (warnings included — freshly emitted code
    /// has no excuse for suspicious constructs).
    fn build_verified(self) -> Result<Program, SimError>;
}

impl BuildVerified for ProgramBuilder {
    fn build_verified(self) -> Result<Program, SimError> {
        let program = self.build()?;
        let report = verify_program(&program);
        if report.is_clean() {
            Ok(program)
        } else {
            Err(SimError::Verification(report.into_error_payload()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_isa::Reg;

    #[test]
    fn build_verified_accepts_clean_programs() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.li(Reg::R2, 0x100000);
        b.li(Reg::R3, 7);
        b.store(Reg::R3, Reg::R2, 0);
        b.commit_mtx(Reg::R1);
        b.halt();
        assert!(b.build_verified().is_ok());
    }

    #[test]
    fn build_verified_rejects_on_warning_too() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg::R1, Reg::R9); // use-before-def warning
        b.halt();
        let err = b.build_verified().unwrap_err();
        match err {
            SimError::Verification(diags) => {
                assert_eq!(diags.len(), 1);
                assert_eq!(diags[0].rule, "reg-use-before-def");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn build_verified_propagates_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l); // never bound
        assert!(matches!(
            b.build_verified(),
            Err(SimError::BadProgram(_))
        ));
    }

    #[test]
    fn never_committed_is_a_set_rule_not_a_program_rule() {
        // Stage-1 shape: begin, leave, halt — clean alone...
        let mk = || {
            let mut b = ProgramBuilder::new();
            b.li(Reg::R1, 1);
            b.begin_mtx(Reg::R1);
            b.li(Reg::R2, 0);
            b.begin_mtx(Reg::R2);
            b.halt();
            b.build().unwrap()
        };
        let p = mk();
        assert!(verify_program(&p).is_clean());
        // ...but as a whole set, nobody ever commits.
        let report = verify_set(&[&p]);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].rule, "mtx-never-committed");
        assert_eq!(report.diagnostics[0].pc, 1);

        // Adding a committer anywhere in the set clears it.
        let mut c = ProgramBuilder::new();
        c.li(Reg::R1, 1);
        c.begin_mtx(Reg::R1);
        c.commit_mtx(Reg::R1);
        c.halt();
        let committer = c.build().unwrap();
        let report = verify_set(&[&p, &committer]);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }
}
