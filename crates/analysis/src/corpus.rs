//! Negative-corpus programs sourced from `hmtx-model` counterexamples.
//!
//! Each entry pins one violation trace the protocol model checker found
//! under the planted `stale-migration-replica` defect, together with the
//! kernel name and op order needed to reproduce it with the checker or
//! `hmtx-run --replay`. [`lower_counterexample`] renders the trace as one
//! guest program per core; because a counterexample trace stops at the
//! violating access, the rendered transactions never commit, and the static
//! verifier flags every speculative core (`mtx-halt-speculative`) plus the
//! set (`mtx-never-committed`) — the static shadow of the protocol-level
//! violation.
//!
//! The corpus is shared: `tests/verify_workloads.rs` pins the static rules
//! and anchors, and the `hmtx-modelcheck` tests re-run the checker on each
//! entry's kernel, confirm the recorded rule is rediscovered, and replay
//! the recorded order to the same violation.

use hmtx_isa::{Program, ProgramBuilder, Reg};

/// One access of a counterexample trace, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterOp {
    /// Core that issued the access.
    pub core: usize,
    /// VID of the issuing transaction (MTXs may span cores).
    pub vid: u16,
    /// Word address.
    pub addr: u64,
    /// `Some(value)` for a store, `None` for a load.
    pub write: Option<u64>,
}

/// One model-checker-sourced counterexample.
#[derive(Debug, Clone)]
pub struct ModelCounterexample {
    /// Corpus entry name.
    pub name: &'static str,
    /// Invariant rule the checker reports for this trace.
    pub model_rule: &'static str,
    /// Planted defect that makes the trace violating.
    pub seed_bug: &'static str,
    /// Kernel the trace runs over (resolvable by
    /// `hmtx_explore::resolve_kernel`).
    pub kernel: &'static str,
    /// Transaction-major op ids of the trace within `kernel`.
    pub order: Vec<usize>,
    /// The same trace as explicit accesses (self-contained, so this crate
    /// needs no kernel machinery).
    pub ops: Vec<CounterOp>,
}

/// The pinned corpus. Provenance: each trace is the counterexample
/// `hmtx-model --seed-bug stale-migration-replica` reports for the named
/// kernel (first violation, breadth-first minimal depth).
#[must_use]
pub fn model_counterexamples() -> Vec<ModelCounterexample> {
    vec![
        // Two transactions read the same line: the §4.3 read migration
        // leaves a live SpecExclusive replica in the supplier's cache, so
        // both L1s answer for VID 0.
        ModelCounterexample {
            name: "read-migration-replica",
            model_rule: "at most one responding version hits per VID",
            seed_bug: "stale-migration-replica",
            kernel: "model-c2-l2-v2",
            order: vec![0, 4],
            ops: vec![
                CounterOp {
                    core: 0,
                    vid: 1,
                    addr: 0x4_0000,
                    write: None,
                },
                CounterOp {
                    core: 1,
                    vid: 2,
                    addr: 0x4_0000,
                    write: None,
                },
            ],
        },
        // One multithreaded transaction writes on core 1 and reads its own
        // uncommitted value from core 0: migrating the dirty version leaves
        // a duplicate SpecModified replica behind.
        ModelCounterexample {
            name: "dirty-migration-replica",
            model_rule: "at most one responding version hits per VID",
            seed_bug: "stale-migration-replica",
            kernel: "migrated_line",
            order: vec![0, 1],
            ops: vec![
                CounterOp {
                    core: 1,
                    vid: 1,
                    addr: 0x4_0000,
                    write: Some(0),
                },
                CounterOp {
                    core: 0,
                    vid: 1,
                    addr: 0x4_0000,
                    write: None,
                },
            ],
        },
    ]
}

/// Renders a counterexample trace as one guest program per core
/// (`0..=max core` in the trace; cores without accesses get a bare `halt`).
/// Each core begins its transaction's MTX before its first access and —
/// deliberately, because the trace ends at the violation — never commits.
///
/// # Panics
///
/// Panics if the trace is empty or a core changes VID mid-trace (no pinned
/// corpus entry does either).
#[must_use]
pub fn lower_counterexample(ops: &[CounterOp]) -> Vec<Program> {
    let cores = ops.iter().map(|o| o.core + 1).max().expect("non-empty trace");
    (0..cores)
        .map(|core| {
            let mut b = ProgramBuilder::new();
            let mut begun: Option<u16> = None;
            for op in ops.iter().filter(|o| o.core == core) {
                match begun {
                    None => {
                        b.li(Reg::R1, i64::from(op.vid));
                        b.begin_mtx(Reg::R1);
                        begun = Some(op.vid);
                    }
                    Some(v) => assert_eq!(v, op.vid, "one VID per core in the pinned corpus"),
                }
                b.li(Reg::R2, op.addr as i64);
                match op.write {
                    Some(value) => {
                        b.li(Reg::R3, value as i64);
                        b.store(Reg::R3, Reg::R2, 0);
                    }
                    None => {
                        b.load(Reg::R3, Reg::R2, 0);
                    }
                }
            }
            b.halt();
            b.build().expect("corpus program assembles")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_set;

    #[test]
    fn every_entry_lowers_to_a_flagged_program_set() {
        for entry in model_counterexamples() {
            let programs = lower_counterexample(&entry.ops);
            let refs: Vec<&Program> = programs.iter().collect();
            let report = verify_set(&refs);
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.rule == "mtx-halt-speculative"),
                "{}: a truncated counterexample must leave an open MTX:\n{}",
                entry.name,
                report.render_text()
            );
            assert_eq!(entry.order.len(), entry.ops.len(), "{}", entry.name);
        }
    }
}
