//! Speculative-store escape check (`spec-store-escape`, warning).
//!
//! An MTX buffers its stores in the cache hierarchy under a speculative VID;
//! a *non-speculative* store from elsewhere in the set that hits the same
//! 64-byte line bypasses that versioning and races the eventual group
//! commit (§4 of the paper: non-speculative writes below `highVID` squash).
//! Such a store is usually a bug in emitted code, so it gets a warning.
//!
//! Aliasing is deliberately conservative to stay false-positive-free:
//!
//! * both addresses constant-foldable → compare 64-byte line indices across
//!   the whole set;
//! * otherwise → same `(core, base register, displacement)` with a
//!   non-constant base, i.e. the same symbolic address expression reused
//!   outside the transaction on the same core.
//!
//! Unknown-vs-constant pairs do **not** alias: claiming so would flag every
//! runtime-control-block store in the shipped emitters.

use hmtx_isa::Reg;
use hmtx_types::{Diagnostic, Severity};

use std::collections::BTreeMap;

use crate::mtx::ProgramFacts;

/// Runs the escape check over the set.
pub fn check_set(facts: &[ProgramFacts], diags: &mut Vec<Diagnostic>) {
    // First speculative store per constant line, across the set.
    let mut spec_lines: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    // First speculative store per symbolic (core, base, disp) key.
    let mut spec_sym: BTreeMap<(usize, usize, i64), usize> = BTreeMap::new();
    for (core, f) in facts.iter().enumerate() {
        for s in f.stores.iter().filter(|s| s.in_mtx) {
            match s.line {
                Some(line) => {
                    spec_lines.entry(line).or_insert((core, s.pc));
                }
                None => {
                    spec_sym.entry((core, s.base.index(), s.disp)).or_insert(s.pc);
                }
            }
        }
    }
    if spec_lines.is_empty() && spec_sym.is_empty() {
        return;
    }

    for (core, f) in facts.iter().enumerate() {
        for s in f.stores.iter().filter(|s| !s.in_mtx) {
            match s.line {
                Some(line) => {
                    if let Some(&(mcore, mpc)) = spec_lines.get(&line) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            rule: "spec-store-escape",
                            core,
                            pc: s.pc,
                            message: format!(
                                "non-speculative store to line 0x{line:x} (64-byte units) \
                                 which the MTX store at core {mcore} pc {mpc} writes \
                                 speculatively; the non-speculative write races the group \
                                 commit"
                            ),
                        });
                    }
                }
                None => {
                    let key = (core, s.base.index(), s.disp);
                    if let Some(&mpc) = spec_sym.get(&key) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            rule: "spec-store-escape",
                            core,
                            pc: s.pc,
                            message: format!(
                                "non-speculative store through {}{:+} which the MTX store \
                                 at pc {mpc} on this core also writes speculatively",
                                Reg::from_index(key.1),
                                s.disp
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::mtx::analyze_program;
    use hmtx_isa::{Program, ProgramBuilder, Reg};

    fn facts_of(programs: &[Program]) -> Vec<ProgramFacts> {
        programs
            .iter()
            .enumerate()
            .map(|(core, p)| analyze_program(core, p, &Cfg::build(p), &mut Vec::new()))
            .collect()
    }

    #[test]
    fn const_line_escape_is_flagged_across_cores() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 1);
        a.begin_mtx(Reg::R1);
        a.li(Reg::R2, 0x100000);
        a.li(Reg::R3, 7);
        a.store(Reg::R3, Reg::R2, 0); // speculative, line 0x4000
        a.commit_mtx(Reg::R1);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.li(Reg::R2, 0x100008);
        b.li(Reg::R3, 9);
        b.store(Reg::R3, Reg::R2, 0); // non-speculative, same line
        b.halt();
        let facts = facts_of(&[a.build().unwrap(), b.build().unwrap()]);
        let mut diags = Vec::new();
        check_set(&facts, &mut diags);
        let d = diags.iter().find(|d| d.rule == "spec-store-escape").unwrap();
        assert_eq!((d.core, d.pc), (1, 2));
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn distinct_lines_do_not_alias() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 1);
        a.begin_mtx(Reg::R1);
        a.li(Reg::R2, 0x100000);
        a.store(Reg::R2, Reg::R2, 0);
        a.commit_mtx(Reg::R1);
        a.li(Reg::R4, 0x10000);
        a.store(Reg::R2, Reg::R4, 0); // different line, non-speculative
        a.halt();
        let facts = facts_of(&[a.build().unwrap()]);
        let mut diags = Vec::new();
        check_set(&facts, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn symbolic_base_reuse_on_same_core_is_flagged() {
        let mut a = ProgramBuilder::new();
        a.consume(Reg::R5, hmtx_types::QueueId(0)); // unknown base
        a.li(Reg::R1, 1);
        a.begin_mtx(Reg::R1);
        a.store(Reg::R1, Reg::R5, 8); // speculative via r5+8
        a.li(Reg::R6, 0);
        a.begin_mtx(Reg::R6); // leave
        a.commit_mtx(Reg::R1);
        a.store(Reg::R1, Reg::R5, 8); // same symbolic address, non-spec
        a.halt();
        let facts = facts_of(&[a.build().unwrap()]);
        let mut diags = Vec::new();
        check_set(&facts, &mut diags);
        let d = diags.iter().find(|d| d.rule == "spec-store-escape").unwrap();
        assert_eq!((d.core, d.pc), (0, 7));
        assert!(d.message.contains("r5+8"), "{}", d.message);
    }

    #[test]
    fn unknown_vs_const_does_not_alias() {
        let mut a = ProgramBuilder::new();
        a.consume(Reg::R5, hmtx_types::QueueId(0));
        a.li(Reg::R1, 1);
        a.begin_mtx(Reg::R1);
        a.store(Reg::R1, Reg::R5, 0); // speculative, unknown address
        a.commit_mtx(Reg::R1);
        a.li(Reg::R2, 0x10000);
        a.store(Reg::R1, Reg::R2, 0); // constant RCB store
        a.halt();
        let facts = facts_of(&[a.build().unwrap()]);
        let mut diags = Vec::new();
        check_set(&facts, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
