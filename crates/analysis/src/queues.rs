//! Set-level hardware-queue checks.
//!
//! Looks at every `produce`/`consume` across all programs of a verified set
//! (program index = core index, mirroring how `runtime::run_loop` launches
//! them) and reports:
//!
//! | rule | severity | meaning |
//! |------|----------|---------|
//! | `queue-no-consumer` | error | a queue is produced but nobody consumes it |
//! | `queue-no-producer` | error | a queue is consumed but nobody produces it |
//! | `queue-multi-consumer` | warning | several cores consume the same queue |
//! | `queue-deadlock-cycle` | error | a wait-for cycle of queues with no injector |
//! | `queue-rate-mismatch` | error | statically fewer items produced than consumed |
//! | `queue-rate-surplus` | warning | statically more items produced than consumed |
//!
//! The rate rules only fire for queues whose every operation sits outside
//! any CFG cycle: once an op is inside a loop the static trip count is
//! unknowable here and the rule stays silent (conservative, no false
//! positives on the shipped pipeline emitters, whose queue traffic is all
//! inside loops).
//!
//! Deadlock detection builds the core-level wait-for graph (consumer core →
//! producer core per queue) and, for each strongly connected component,
//! checks whether any member can reach a `produce` of a cycle queue along a
//! CFG path that does not first block on a `consume` of a cycle queue — the
//! DOACROSS token ring is exactly such a case (worker 0's first-iteration
//! skip path injects the first token), so it is *not* flagged.

use std::collections::{BTreeMap, BTreeSet};

use hmtx_isa::{Instr, Program};
use hmtx_types::{Diagnostic, QueueId, Severity};

use crate::cfg::{scc, Cfg};
use crate::mtx::{ProgramFacts, QueueOpFact, QueueOpKind};

/// Runs every queue rule over the set. `facts[i]` / `cfgs[i]` /
/// `programs[i]` describe core `i`.
pub fn check_set(
    programs: &[&Program],
    cfgs: &[Cfg],
    facts: &[ProgramFacts],
    diags: &mut Vec<Diagnostic>,
) {
    // Queue -> per-core op lists.
    let mut by_queue: BTreeMap<QueueId, Vec<(usize, QueueOpFact)>> = BTreeMap::new();
    for (core, f) in facts.iter().enumerate() {
        for op in &f.queue_ops {
            by_queue.entry(op.q).or_default().push((core, *op));
        }
    }

    for (q, ops) in &by_queue {
        let producers: BTreeSet<usize> = ops
            .iter()
            .filter(|(_, o)| o.kind == QueueOpKind::Produce)
            .map(|(c, _)| *c)
            .collect();
        let consumers: BTreeSet<usize> = ops
            .iter()
            .filter(|(_, o)| o.kind == QueueOpKind::Consume)
            .map(|(c, _)| *c)
            .collect();
        let first = |kind: QueueOpKind| {
            ops.iter()
                .filter(|(_, o)| o.kind == kind)
                .min_by_key(|(c, o)| (*c, o.pc))
                .map(|(c, o)| (*c, o.pc))
        };
        if consumers.is_empty() {
            let (core, pc) = first(QueueOpKind::Produce).expect("queue has ops");
            diags.push(Diagnostic {
                severity: Severity::Error,
                rule: "queue-no-consumer",
                core,
                pc,
                message: format!(
                    "{q} is produced here but no core in the set ever consumes it; the \
                     producer will block once the queue fills"
                ),
            });
        }
        if producers.is_empty() {
            let (core, pc) = first(QueueOpKind::Consume).expect("queue has ops");
            diags.push(Diagnostic {
                severity: Severity::Error,
                rule: "queue-no-producer",
                core,
                pc,
                message: format!(
                    "{q} is consumed here but no core in the set ever produces it; this \
                     consume blocks forever"
                ),
            });
        }
        if consumers.len() > 1 {
            let mut it = consumers.iter();
            let _first_core = it.next();
            let second = *it.next().expect("len > 1");
            let pc = ops
                .iter()
                .filter(|(c, o)| *c == second && o.kind == QueueOpKind::Consume)
                .map(|(_, o)| o.pc)
                .min()
                .expect("second consumer has a consume");
            diags.push(Diagnostic {
                severity: Severity::Warning,
                rule: "queue-multi-consumer",
                core: second,
                pc,
                message: format!(
                    "{q} is consumed by {} different cores ({:?}); hardware queues are \
                     single-reader FIFOs, so interleaving is timing-dependent",
                    consumers.len(),
                    consumers.iter().collect::<Vec<_>>()
                ),
            });
        }
    }

    check_deadlock_cycles(programs, &by_queue, facts.len(), diags);
    check_rates(cfgs, &by_queue, diags);
}

fn check_deadlock_cycles(
    programs: &[&Program],
    by_queue: &BTreeMap<QueueId, Vec<(usize, QueueOpFact)>>,
    ncores: usize,
    diags: &mut Vec<Diagnostic>,
) {
    // Wait-for graph on cores: consumer -> each producer of that queue.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ncores];
    for ops in by_queue.values() {
        let producers: Vec<usize> = ops
            .iter()
            .filter(|(_, o)| o.kind == QueueOpKind::Produce)
            .map(|(c, _)| *c)
            .collect();
        for (c, o) in ops {
            if o.kind == QueueOpKind::Consume {
                for &p in &producers {
                    adj[*c].insert(p);
                }
            }
        }
    }
    let adj_vec: Vec<Vec<usize>> = adj.iter().map(|s| s.iter().copied().collect()).collect();
    let (scc_of, scc_count) = scc(&adj_vec);

    for s in 0..scc_count {
        let members: BTreeSet<usize> = (0..ncores).filter(|c| scc_of[*c] == s).collect();
        let cyclic = members.len() > 1
            || members
                .iter()
                .any(|&c| adj_vec[c].contains(&c));
        if !cyclic {
            continue;
        }
        // Queues that are part of the cycle: consumed inside the SCC and
        // produced *only* inside it (an outside producer can always feed
        // the cycle from elsewhere).
        let cycle_queues: BTreeSet<QueueId> = by_queue
            .iter()
            .filter(|(_, ops)| {
                let producers: BTreeSet<usize> = ops
                    .iter()
                    .filter(|(_, o)| o.kind == QueueOpKind::Produce)
                    .map(|(c, _)| *c)
                    .collect();
                let consumed_inside = ops
                    .iter()
                    .any(|(c, o)| o.kind == QueueOpKind::Consume && members.contains(c));
                consumed_inside && !producers.is_empty() && producers.is_subset(&members)
            })
            .map(|(q, _)| *q)
            .collect();
        if cycle_queues.is_empty() {
            continue;
        }
        // An "injector" breaks the cycle: some member can reach a produce of
        // a cycle queue without first blocking on a consume of one.
        let has_injector = members
            .iter()
            .any(|&c| can_produce_before_consuming(programs[c], &cycle_queues));
        if has_injector {
            continue;
        }
        let (core, pc) = members
            .iter()
            .flat_map(|&c| {
                by_queue
                    .iter()
                    .filter(|(q, _)| cycle_queues.contains(q))
                    .flat_map(move |(_, ops)| {
                        ops.iter()
                            .filter(move |(oc, o)| *oc == c && o.kind == QueueOpKind::Consume)
                            .map(|(oc, o)| (*oc, o.pc))
                    })
            })
            .min()
            .expect("cycle has a consume");
        diags.push(Diagnostic {
            severity: Severity::Error,
            rule: "queue-deadlock-cycle",
            core,
            pc,
            message: format!(
                "cores {:?} wait on each other through queues {:?} and no core can produce \
                 a first item before blocking on a consume: every queue starts empty, so \
                 the set deadlocks",
                members.iter().collect::<Vec<_>>(),
                cycle_queues.iter().map(|q| q.to_string()).collect::<Vec<_>>()
            ),
        });
    }
}

/// CFG path search at instruction granularity: can execution reach a
/// `produce` of a queue in `queues` from the entry without first executing a
/// `consume` of any queue in `queues`?
fn can_produce_before_consuming(program: &Program, queues: &BTreeSet<QueueId>) -> bool {
    let code = program.instrs();
    let len = code.len();
    if len == 0 {
        return false;
    }
    let mut visited = vec![false; len];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if pc >= len || visited[pc] {
            continue;
        }
        visited[pc] = true;
        match code[pc] {
            Instr::Produce { q, .. } if queues.contains(&q) => return true,
            Instr::Consume { q, .. } if queues.contains(&q) => continue, // path blocks here
            Instr::Branch { target, .. } => {
                stack.push(target);
                stack.push(pc + 1);
            }
            Instr::Jump { target } => stack.push(target),
            Instr::Halt | Instr::AbortMtx { .. } => {}
            _ => stack.push(pc + 1),
        }
    }
    false
}

fn check_rates(
    cfgs: &[Cfg],
    by_queue: &BTreeMap<QueueId, Vec<(usize, QueueOpFact)>>,
    diags: &mut Vec<Diagnostic>,
) {
    const INF: u64 = u64::MAX / 4;
    for (q, ops) in by_queue {
        if ops.iter().any(|(_, o)| o.in_cycle) {
            continue; // loop trip counts are not statically known here
        }
        let has = |kind: QueueOpKind| ops.iter().any(|(_, o)| o.kind == kind);
        if !has(QueueOpKind::Produce) || !has(QueueOpKind::Consume) {
            continue; // already reported as queue-no-producer/consumer
        }
        let mut total = BTreeMap::new(); // kind -> (min_sum, max_sum)
        for kind in [QueueOpKind::Produce, QueueOpKind::Consume] {
            let mut min_sum = 0u64;
            let mut max_sum = 0u64;
            for (core, cfg) in cfgs.iter().enumerate() {
                let blocks_with: BTreeMap<usize, u64> = ops
                    .iter()
                    .filter(|(c, o)| *c == core && o.kind == kind)
                    .fold(BTreeMap::new(), |mut m, (_, o)| {
                        *m.entry(o.block).or_insert(0) += 1;
                        m
                    });
                let (lo, hi) = path_count_range(cfg, &blocks_with);
                min_sum = min_sum.saturating_add(if lo >= INF { 0 } else { lo });
                max_sum = max_sum.saturating_add(hi.min(INF));
            }
            total.insert(kind as usize, (min_sum, max_sum));
        }
        let (p_min, p_max) = total[&(QueueOpKind::Produce as usize)];
        let (c_min, c_max) = total[&(QueueOpKind::Consume as usize)];
        if p_max < c_min {
            let (core, pc) = ops
                .iter()
                .filter(|(_, o)| o.kind == QueueOpKind::Consume)
                .map(|(c, o)| (*c, o.pc))
                .min()
                .expect("c_min > 0 implies a consume");
            diags.push(Diagnostic {
                severity: Severity::Error,
                rule: "queue-rate-mismatch",
                core,
                pc,
                message: format!(
                    "{q}: every execution consumes at least {c_min} item(s) but at most \
                     {p_max} are ever produced; the last consume blocks forever"
                ),
            });
        } else if p_min > c_max {
            let (core, pc) = ops
                .iter()
                .filter(|(_, o)| o.kind == QueueOpKind::Produce)
                .map(|(c, o)| (*c, o.pc))
                .min()
                .expect("p_min > 0 implies a produce");
            diags.push(Diagnostic {
                severity: Severity::Warning,
                rule: "queue-rate-surplus",
                core,
                pc,
                message: format!(
                    "{q}: every execution produces at least {p_min} item(s) but at most \
                     {c_max} are ever consumed; leftover items (or a full-queue stall) \
                     are likely unintended"
                ),
            });
        }
    }
}

/// `(min, max)` number of ops (counted per block via `count_of`) on any
/// entry-to-exit path. Works on the SCC condensation, which is a DAG whose
/// scc ids are reverse-topological; cyclic SCCs are assumed to contain no
/// counted ops (callers guarantee this). Returns `(INF, 0)`-style bounds
/// when no exit is reachable.
fn path_count_range(cfg: &Cfg, count_of: &BTreeMap<usize, u64>) -> (u64, u64) {
    const INF: u64 = u64::MAX / 4;
    if cfg.blocks.is_empty() {
        return (0, 0);
    }
    let n = cfg.scc_count;
    let mut cnt = vec![0u64; n];
    let mut can_exit = vec![false; n];
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for b in &cfg.blocks {
        let s = cfg.scc_of[b.id];
        cnt[s] += count_of.get(&b.id).copied().unwrap_or(0);
        if b.succs.is_empty() || b.implicit_exit {
            can_exit[s] = true;
        }
        for &t in &b.succs {
            let ts = cfg.scc_of[t];
            if ts != s {
                succs[s].insert(ts);
            }
        }
    }
    // Reverse-topological ids: process successors (lower ids) first.
    let mut lo = vec![INF; n];
    let mut hi = vec![0u64; n];
    let mut reaches_exit = vec![false; n];
    for s in 0..n {
        let mut best_lo = if can_exit[s] { Some(0u64) } else { None };
        let mut best_hi = if can_exit[s] { Some(0u64) } else { None };
        for &t in &succs[s] {
            if reaches_exit[t] {
                best_lo = Some(best_lo.map_or(lo[t], |b| b.min(lo[t])));
                best_hi = Some(best_hi.map_or(hi[t], |b| b.max(hi[t])));
            }
        }
        if let (Some(bl), Some(bh)) = (best_lo, best_hi) {
            reaches_exit[s] = true;
            lo[s] = cnt[s].saturating_add(bl);
            hi[s] = cnt[s].saturating_add(bh);
        }
    }
    let entry = cfg.scc_of[cfg.block_of[0]];
    if reaches_exit[entry] {
        (lo[entry], hi[entry])
    } else {
        (INF, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtx::analyze_program;
    use hmtx_isa::{Cond, ProgramBuilder, Reg};

    fn verify(programs: Vec<Program>) -> Vec<Diagnostic> {
        let cfgs: Vec<Cfg> = programs.iter().map(Cfg::build).collect();
        let mut diags = Vec::new();
        let facts: Vec<ProgramFacts> = programs
            .iter()
            .zip(cfgs.iter())
            .enumerate()
            .map(|(core, (p, cfg))| analyze_program(core, p, cfg, &mut Vec::new()))
            .collect();
        let refs: Vec<&Program> = programs.iter().collect();
        check_set(&refs, &cfgs, &facts, &mut diags);
        diags
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unmatched_queues_are_errors() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 7);
        a.produce(QueueId(3), Reg::R1);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R2, QueueId(4));
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        assert!(rules(&diags).contains(&"queue-no-consumer"), "{diags:?}");
        assert!(rules(&diags).contains(&"queue-no-producer"), "{diags:?}");
        let nc = diags.iter().find(|d| d.rule == "queue-no-consumer").unwrap();
        assert_eq!((nc.core, nc.pc), (0, 1));
        let np = diags.iter().find(|d| d.rule == "queue-no-producer").unwrap();
        assert_eq!((np.core, np.pc), (1, 0));
    }

    #[test]
    fn mutual_consume_first_deadlocks() {
        // Core 0: consume q0 then produce q1; core 1: consume q1 then
        // produce q0. Both queues start empty -> deadlock.
        let mut a = ProgramBuilder::new();
        a.consume(Reg::R1, QueueId(0));
        a.produce(QueueId(1), Reg::R1);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R1, QueueId(1));
        b.produce(QueueId(0), Reg::R1);
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        assert!(rules(&diags).contains(&"queue-deadlock-cycle"), "{diags:?}");
        let d = diags.iter().find(|d| d.rule == "queue-deadlock-cycle").unwrap();
        assert_eq!((d.core, d.pc), (0, 0));
    }

    #[test]
    fn token_ring_with_skip_path_is_clean() {
        // DOACROSS-style: each core consumes its own token queue and
        // produces the next core's, but core 0 skips the consume on a flag
        // (first iteration) -> it can inject the first token.
        let make = |my_q: usize, next_q: usize, skip: bool| {
            let mut b = ProgramBuilder::new();
            let after = b.new_label();
            if skip {
                b.li(Reg::R19, 1);
                b.branch_imm(Cond::Ne, Reg::R19, 0, after);
            }
            b.consume(Reg::R1, QueueId(my_q));
            b.bind(after).unwrap();
            b.li(Reg::R2, 5);
            b.produce(QueueId(next_q), Reg::R2);
            b.halt();
            b.build().unwrap()
        };
        let diags = verify(vec![make(0, 1, true), make(1, 0, false)]);
        assert!(
            !rules(&diags).contains(&"queue-deadlock-cycle"),
            "{diags:?}"
        );
    }

    #[test]
    fn straight_line_rate_mismatch_is_detected() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 7);
        a.produce(QueueId(2), Reg::R1);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R2, QueueId(2));
        b.consume(Reg::R3, QueueId(2));
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        let d = diags.iter().find(|d| d.rule == "queue-rate-mismatch").unwrap();
        assert_eq!((d.core, d.pc), (1, 0));
        assert!(d.message.contains("at least 2"), "{}", d.message);
    }

    #[test]
    fn surplus_is_a_warning() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 7);
        a.produce(QueueId(2), Reg::R1);
        a.produce(QueueId(2), Reg::R1);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R2, QueueId(2));
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        let d = diags.iter().find(|d| d.rule == "queue-rate-surplus").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.core, d.pc), (0, 1));
    }

    #[test]
    fn looped_queue_traffic_is_exempt_from_rate_rules() {
        // Producer loops 10 times, consumer once: rates differ but ops sit
        // in cycles, so the static rule must stay silent.
        let mut a = ProgramBuilder::new();
        let head = a.new_label();
        a.li(Reg::R1, 0);
        a.bind(head).unwrap();
        a.produce(QueueId(2), Reg::R1);
        a.addi(Reg::R1, Reg::R1, 1);
        a.branch_imm(Cond::LtU, Reg::R1, 10, head);
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R2, QueueId(2));
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        assert!(
            !rules(&diags).iter().any(|r| r.starts_with("queue-rate")),
            "{diags:?}"
        );
    }

    #[test]
    fn branchy_counts_use_min_and_max() {
        // Producer: 1 produce always, 1 more on a branch -> min 1, max 2.
        // Consumer: exactly 2 -> no mismatch possible to prove; silent.
        let mut a = ProgramBuilder::new();
        let skip = a.new_label();
        a.li(Reg::R1, 7);
        a.produce(QueueId(2), Reg::R1);
        a.branch_imm(Cond::Eq, Reg::R1, 0, skip);
        a.produce(QueueId(2), Reg::R1);
        a.bind(skip).unwrap();
        a.halt();
        let mut b = ProgramBuilder::new();
        b.consume(Reg::R2, QueueId(2));
        b.consume(Reg::R3, QueueId(2));
        b.halt();
        let diags = verify(vec![a.build().unwrap(), b.build().unwrap()]);
        assert!(
            !rules(&diags).iter().any(|r| r.starts_with("queue-rate")),
            "min/max overlap must not fire: {diags:?}"
        );
    }

    #[test]
    fn multi_consumer_is_a_warning() {
        let mut a = ProgramBuilder::new();
        a.li(Reg::R1, 7);
        a.produce(QueueId(2), Reg::R1);
        a.produce(QueueId(2), Reg::R1);
        a.halt();
        let mk_consumer = || {
            let mut b = ProgramBuilder::new();
            b.consume(Reg::R2, QueueId(2));
            b.halt();
            b.build().unwrap()
        };
        let diags = verify(vec![a.build().unwrap(), mk_consumer(), mk_consumer()]);
        let d = diags.iter().find(|d| d.rule == "queue-multi-consumer").unwrap();
        assert_eq!(d.core, 2, "anchored at the second consumer");
    }
}
