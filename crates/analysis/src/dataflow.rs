//! Abstract domains shared by the per-program passes.
//!
//! Three facts are tracked jointly in one forward dataflow state:
//!
//! * a per-register constant lattice ([`AbsVal`]) — needed to recognise the
//!   runtime's `li T0, 0; beginMTX T0` "leave transaction" idiom and to
//!   resolve store addresses for the escape check;
//! * a per-register *defined on every path* bit — reads outside it observe
//!   the architectural zero a thread starts with, which is legal but almost
//!   always a bug in emitted code (`reg-use-before-def`);
//! * the MTX protocol state ([`MtxState`]) — drives the `mtx-*` rules.

use hmtx_isa::{Instr, Operand, Reg};

/// Abstract register value. There is no explicit bottom: the analysis only
/// visits reachable code, and thread registers start as architectural zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Known constant on every path reaching this point.
    Const(u64),
    /// Not a single compile-time constant.
    Unknown,
}

impl AbsVal {
    /// Join of two values (equal constants survive, anything else widens).
    pub fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) if a == b => AbsVal::Const(a),
            _ => AbsVal::Unknown,
        }
    }

    /// The constant, if known.
    pub fn as_const(self) -> Option<u64> {
        match self {
            AbsVal::Const(c) => Some(c),
            AbsVal::Unknown => None,
        }
    }
}

/// MTX protocol state of one core along one control path (§3.1/§4.5 of the
/// paper as embodied by `crates/machine`).
///
/// `Left` models the PS-DSWP stage-1 idiom: the core executed
/// `beginMTX(0)` to return to non-speculative execution while its earlier
/// transaction stays *pending* for another core to commit. `Idle` is the
/// don't-know top element produced by merging heterogeneous paths; every
/// operation is allowed from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtxState {
    /// No MTX instruction executed yet on this path.
    Fresh,
    /// Inside a speculative MTX begun at `begin_pc` with `beginMTX(reg)`.
    Spec {
        /// Register that held the VID at the begin.
        reg: Reg,
        /// pc of the `beginMTX`.
        begin_pc: usize,
    },
    /// Began an MTX, then returned to non-speculative via `beginMTX(0)`;
    /// the transaction is still pending (uncommitted).
    Left {
        /// Register that held the VID at the original begin.
        reg: Reg,
        /// pc of the original `beginMTX`.
        begin_pc: usize,
    },
    /// The most recent MTX was committed with `commitMTX(reg)`.
    Committed {
        /// Register named by the commit.
        reg: Reg,
    },
    /// Merged / unknown non-speculative state; checks are suppressed.
    Idle,
}

impl MtxState {
    /// Joins two path states. Returns the merged state plus `true` when the
    /// merge is a protocol divergence worth reporting: one path is inside a
    /// speculative MTX and the other is not (or names a different VID
    /// register), so whatever follows the join point cannot be correct on
    /// both paths.
    pub fn join(self, other: MtxState) -> (MtxState, bool) {
        use MtxState::*;
        if self == other {
            return (self, false);
        }
        match (self, other) {
            // Same begin site reached with consistent facts: keep the
            // earlier begin_pc for stable diagnostics.
            (
                Spec { reg: a, begin_pc: pa },
                Spec { reg: b, begin_pc: pb },
            ) if a == b => (
                Spec {
                    reg: a,
                    begin_pc: pa.min(pb),
                },
                false,
            ),
            (Spec { .. }, _) | (_, Spec { .. }) => (Idle, true),
            (
                Left { reg: a, begin_pc: pa },
                Left { reg: b, begin_pc: pb },
            ) if a == b => (
                Left {
                    reg: a,
                    begin_pc: pa.min(pb),
                },
                false,
            ),
            _ => (Idle, false),
        }
    }
}

/// Joint dataflow state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Abstract value of each register.
    pub regs: [AbsVal; Reg::COUNT],
    /// Bit `r` set: register `r` has been written on *every* path here.
    pub defined: u32,
    /// MTX protocol state.
    pub mtx: MtxState,
}

impl State {
    /// The state a thread starts in: all registers architectural zero,
    /// nothing program-defined, no MTX activity.
    pub fn entry() -> State {
        State {
            regs: [AbsVal::Const(0); Reg::COUNT],
            defined: 0,
            mtx: MtxState::Fresh,
        }
    }

    /// Whether `r` has a definition on every path.
    pub fn is_defined(&self, r: Reg) -> bool {
        self.defined & (1 << r.index()) != 0
    }

    /// Records a write of `r` with abstract value `v`.
    pub fn define(&mut self, r: Reg, v: AbsVal) {
        self.regs[r.index()] = v;
        self.defined |= 1 << r.index();
    }

    /// Abstract value of operand `o`.
    pub fn operand(&self, o: Operand) -> AbsVal {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(i) => AbsVal::Const(i as u64),
        }
    }

    /// Joins another path's state into this one. Returns `true` when the
    /// MTX-state merge is a reportable divergence (see [`MtxState::join`]).
    #[must_use]
    pub fn join(&mut self, other: &State) -> bool {
        for (mine, theirs) in self.regs.iter_mut().zip(other.regs.iter()) {
            *mine = mine.join(*theirs);
        }
        self.defined &= other.defined;
        let (merged, diverged) = self.mtx.join(other.mtx);
        self.mtx = merged;
        diverged
    }
}

/// Appends every register `instr` reads to `out`.
pub fn reg_reads(instr: &Instr, out: &mut Vec<Reg>) {
    match *instr {
        Instr::Mov { rs, .. } | Instr::Out { rs } | Instr::Produce { rs, .. } => out.push(rs),
        Instr::Alu { rs, rhs, .. } => {
            out.push(rs);
            if let Operand::Reg(r) = rhs {
                out.push(r);
            }
        }
        Instr::Load { base, .. } => out.push(base),
        Instr::Store { rs, base, .. } => {
            out.push(rs);
            out.push(base);
        }
        Instr::Branch { rs, rhs, .. } => {
            out.push(rs);
            if let Operand::Reg(r) = rhs {
                out.push(r);
            }
        }
        Instr::Compute { amount } => {
            if let Operand::Reg(r) = amount {
                out.push(r);
            }
        }
        Instr::BeginMtx { rvid } | Instr::CommitMtx { rvid } | Instr::AbortMtx { rvid } => {
            out.push(rvid)
        }
        Instr::Li { .. }
        | Instr::Jump { .. }
        | Instr::Halt
        | Instr::InitMtx { .. }
        | Instr::VidReset
        | Instr::Consume { .. }
        | Instr::Marker { .. } => {}
    }
}

/// The register `instr` writes, if any.
pub fn reg_write(instr: &Instr) -> Option<Reg> {
    match *instr {
        Instr::Li { rd, .. }
        | Instr::Mov { rd, .. }
        | Instr::Alu { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::Consume { rd, .. } => Some(rd),
        _ => None,
    }
}

/// Constant-propagation transfer for `instr` (register effects only; the
/// caller handles diagnostics and MTX state).
pub fn transfer_regs(state: &mut State, instr: &Instr) {
    match *instr {
        Instr::Li { rd, imm } => state.define(rd, AbsVal::Const(imm as u64)),
        Instr::Mov { rd, rs } => {
            let v = state.regs[rs.index()];
            state.define(rd, v);
        }
        Instr::Alu { op, rd, rs, rhs } => {
            let v = match (state.regs[rs.index()].as_const(), state.operand(rhs).as_const()) {
                (Some(a), Some(b)) => AbsVal::Const(op.apply(a, b)),
                _ => AbsVal::Unknown,
            };
            state.define(rd, v);
        }
        Instr::Load { rd, .. } | Instr::Consume { rd, .. } => state.define(rd, AbsVal::Unknown),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_isa::AluOp;

    #[test]
    fn constants_fold_through_alu() {
        let mut s = State::entry();
        transfer_regs(
            &mut s,
            &Instr::Li {
                rd: Reg::R1,
                imm: 6,
            },
        );
        transfer_regs(
            &mut s,
            &Instr::Alu {
                op: AluOp::Mul,
                rd: Reg::R2,
                rs: Reg::R1,
                rhs: Operand::Imm(7),
            },
        );
        assert_eq!(s.regs[2], AbsVal::Const(42));
        assert!(s.is_defined(Reg::R2));
    }

    #[test]
    fn loads_widen_to_unknown() {
        let mut s = State::entry();
        transfer_regs(
            &mut s,
            &Instr::Load {
                rd: Reg::R3,
                base: Reg::R0,
                disp: 0,
            },
        );
        assert_eq!(s.regs[3], AbsVal::Unknown);
        assert!(s.is_defined(Reg::R3));
    }

    #[test]
    fn join_intersects_defined_and_widens_differing_consts() {
        let mut a = State::entry();
        a.define(Reg::R1, AbsVal::Const(1));
        a.define(Reg::R2, AbsVal::Const(5));
        let mut b = State::entry();
        b.define(Reg::R1, AbsVal::Const(2));
        let diverged = a.join(&b);
        assert!(!diverged);
        assert_eq!(a.regs[1], AbsVal::Unknown);
        assert!(a.is_defined(Reg::R1));
        assert!(!a.is_defined(Reg::R2), "defined only on one path");
        assert_eq!(
            a.regs[2],
            AbsVal::Unknown,
            "5 on one path, architectural 0 on the other"
        );
    }

    #[test]
    fn mtx_join_flags_spec_vs_nonspec() {
        let spec = MtxState::Spec {
            reg: Reg::R24,
            begin_pc: 3,
        };
        let (merged, d) = spec.join(MtxState::Fresh);
        assert_eq!(merged, MtxState::Idle);
        assert!(d);

        let (merged, d) = spec.join(spec);
        assert_eq!(merged, spec);
        assert!(!d);

        let other = MtxState::Spec {
            reg: Reg::R1,
            begin_pc: 9,
        };
        let (_, d) = spec.join(other);
        assert!(d, "different VID registers diverge");
    }

    #[test]
    fn mtx_join_left_and_committed_coalesce_silently() {
        let left = MtxState::Left {
            reg: Reg::R24,
            begin_pc: 2,
        };
        let (m, d) = left.join(MtxState::Committed { reg: Reg::R24 });
        assert_eq!(m, MtxState::Idle);
        assert!(!d);
        let (m, d) = MtxState::Fresh.join(left);
        assert_eq!(m, MtxState::Idle);
        assert!(!d);
    }

    #[test]
    fn reads_and_writes_enumerate_operands() {
        let mut reads = Vec::new();
        reg_reads(
            &Instr::Store {
                rs: Reg::R1,
                base: Reg::R2,
                disp: 8,
            },
            &mut reads,
        );
        assert_eq!(reads, vec![Reg::R1, Reg::R2]);
        assert_eq!(
            reg_write(&Instr::Consume {
                rd: Reg::R5,
                q: hmtx_types::QueueId(1),
            }),
            Some(Reg::R5)
        );
        assert_eq!(reg_write(&Instr::Halt), None);
    }
}
