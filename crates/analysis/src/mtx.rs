//! Per-program MTX protocol and register-discipline checks.
//!
//! Runs a forward fixpoint of the joint [`State`] over the CFG, then a final
//! reporting pass over the converged block inputs. Rules (per program):
//!
//! | rule | severity | meaning |
//! |------|----------|---------|
//! | `mtx-halt-speculative` | error | control leaves the program inside a speculative MTX |
//! | `mtx-begin-while-speculative` | error | `beginMTX(v≠0)` without leaving the previous MTX |
//! | `mtx-vid-mismatch` | error | `commitMTX`/`abortMTX` names a different VID than the begin |
//! | `mtx-vid-clobber` | error | the VID register is overwritten while its MTX is pending |
//! | `mtx-double-commit` | error | the same VID register committed twice with no new begin |
//! | `mtx-vidreset-speculative` | error | `vidreset` while speculative (§4.6 requires drained state) |
//! | `mtx-state-divergence` | error | paths merge with incompatible MTX states |
//! | `mtx-init-speculative` | warning | `initMTX` inside a speculative region |
//! | `mtx-end-without-begin` | warning | commit/abort with no MTX ever begun on the path |
//! | `reg-use-before-def` | warning | read of a register no path has written (reads zero) |
//!
//! The pass deliberately understands three runtime idioms so that every
//! shipped emitter verifies clean (see `crates/runtime/src/emit.rs`):
//! `li T0, 0; beginMTX T0` is *leaving* a transaction (constant propagation
//! resolves the zero); halting in the [`MtxState::Left`] state is legal —
//! PS-DSWP stage 1 begins transactions that its consumers commit; and
//! `li T0, 0x7FFF; abortMTX T0` is the HyTM VID-exhaustion watchdog
//! (constant propagation resolves the sentinel), which legally aborts in
//! any MTX state to re-enter through the software slow path.

use hmtx_isa::{Instr, Program, Reg};
use hmtx_types::{Diagnostic, QueueId, Severity, VID_EXHAUSTION_SENTINEL};

use crate::cfg::Cfg;
use crate::dataflow::{reg_reads, reg_write, transfer_regs, AbsVal, MtxState, State};

/// Kind of hardware-queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOpKind {
    /// `produce q, rs`.
    Produce,
    /// `consume rd, q`.
    Consume,
}

/// One queue operation, located for the set-level queue checks.
#[derive(Debug, Clone, Copy)]
pub struct QueueOpFact {
    /// Which queue.
    pub q: QueueId,
    /// Instruction index.
    pub pc: usize,
    /// Containing CFG block.
    pub block: usize,
    /// Produce or consume.
    pub kind: QueueOpKind,
    /// Whether the op lies on a CFG cycle (disables static rate counting).
    pub in_cycle: bool,
}

/// One store, located for the set-level speculative-escape check.
#[derive(Debug, Clone, Copy)]
pub struct StoreFact {
    /// Instruction index.
    pub pc: usize,
    /// The store executes inside a speculative MTX region.
    pub in_mtx: bool,
    /// Base register.
    pub base: Reg,
    /// Displacement.
    pub disp: i64,
    /// 64-byte line index when the effective address is a known constant.
    pub line: Option<u64>,
}

/// Facts one program contributes to the set-level checks.
#[derive(Debug, Clone, Default)]
pub struct ProgramFacts {
    /// pc of the first speculative `beginMTX` (operand not known-zero).
    pub first_spec_begin: Option<usize>,
    /// The program contains any `commitMTX` or `abortMTX`.
    pub has_commit_or_abort: bool,
    /// Every queue operation in the program.
    pub queue_ops: Vec<QueueOpFact>,
    /// Every (reachable) store in the program.
    pub stores: Vec<StoreFact>,
}

struct Ctx<'a> {
    core: usize,
    program_has_commit: bool,
    diags: &'a mut Vec<Diagnostic>,
    facts: &'a mut ProgramFacts,
    reads: Vec<Reg>,
}

impl Ctx<'_> {
    fn diag(&mut self, severity: Severity, rule: &'static str, pc: usize, message: String) {
        self.diags.push(Diagnostic {
            severity,
            rule,
            core: self.core,
            pc,
            message,
        });
    }
}

/// Runs the per-program pass: emits diagnostics into `diags` and returns the
/// facts the set-level checks need.
pub fn analyze_program(
    core: usize,
    program: &Program,
    cfg: &Cfg,
    diags: &mut Vec<Diagnostic>,
) -> ProgramFacts {
    let mut facts = ProgramFacts::default();
    for (pc, i) in program.instrs().iter().enumerate() {
        match *i {
            Instr::Produce { q, .. } => facts.queue_ops.push(QueueOpFact {
                q,
                pc,
                block: cfg.block_of[pc],
                kind: QueueOpKind::Produce,
                in_cycle: cfg.pc_in_cycle(pc),
            }),
            Instr::Consume { q, .. } => facts.queue_ops.push(QueueOpFact {
                q,
                pc,
                block: cfg.block_of[pc],
                kind: QueueOpKind::Consume,
                in_cycle: cfg.pc_in_cycle(pc),
            }),
            Instr::CommitMtx { .. } | Instr::AbortMtx { .. } => facts.has_commit_or_abort = true,
            _ => {}
        }
    }
    if program.is_empty() {
        return facts;
    }

    let program_has_commit = program
        .instrs()
        .iter()
        .any(|i| matches!(i, Instr::CommitMtx { .. }));

    // Phase 1: fixpoint of block output states (no diagnostics).
    let nblocks = cfg.blocks.len();
    let mut outs: Vec<Option<State>> = vec![None; nblocks];
    let mut ins: Vec<Option<State>> = vec![None; nblocks];
    ins[0] = Some(State::entry());
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for b in &cfg.blocks {
        for &s in &b.succs {
            preds[s].push(b.id);
        }
    }

    let mut worklist: Vec<usize> = vec![0];
    let mut on_list = vec![false; nblocks];
    on_list[0] = true;
    let mut silent = Ctx {
        core,
        program_has_commit,
        diags: &mut Vec::new(),
        facts: &mut ProgramFacts::default(),
        reads: Vec::new(),
    };
    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        let mut state = ins[b].clone().expect("worklist block has an in-state");
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            step(&mut state, pc, &program.instrs()[pc], &mut silent, false);
        }
        if outs[b].as_ref() == Some(&state) {
            continue;
        }
        outs[b] = Some(state.clone());
        for &s in &cfg.blocks[b].succs {
            let changed = match &mut ins[s] {
                Some(existing) => {
                    let before = existing.clone();
                    let _ = existing.join(&state);
                    *existing != before
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !on_list[s] {
                on_list[s] = true;
                worklist.push(s);
            }
        }
    }

    // Phase 2: one reporting pass per reachable block over converged inputs.
    let mut ctx = Ctx {
        core,
        program_has_commit,
        diags,
        facts: &mut facts,
        reads: Vec::new(),
    };
    for b in 0..nblocks {
        let Some(in_state) = &ins[b] else {
            continue; // unreachable code is not analyzed
        };
        // Re-merge predecessors to localize any protocol divergence.
        let mut diverged = false;
        if b == 0 {
            let mut acc = State::entry();
            for &p in &preds[b] {
                if let Some(o) = &outs[p] {
                    diverged |= acc.join(o);
                }
            }
        } else {
            let mut acc: Option<State> = None;
            for &p in &preds[b] {
                if let Some(o) = &outs[p] {
                    match &mut acc {
                        Some(a) => diverged |= a.join(o),
                        None => acc = Some(o.clone()),
                    }
                }
            }
        }
        if diverged {
            let pc = cfg.blocks[b].start;
            ctx.diag(
                Severity::Error,
                "mtx-state-divergence",
                pc,
                "paths merging here disagree on the MTX state (one is inside a speculative \
                 transaction, the other is not, or they name different VID registers)"
                    .to_string(),
            );
        }
        let mut state = in_state.clone();
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            step(&mut state, pc, &program.instrs()[pc], &mut ctx, true);
        }
        if cfg.blocks[b].implicit_exit {
            if let MtxState::Spec { reg, begin_pc } = state.mtx {
                let pc = cfg.blocks[b].end - 1;
                ctx.diag(
                    Severity::Error,
                    "mtx-halt-speculative",
                    pc,
                    format!(
                        "control falls off the end of the program inside the speculative MTX \
                         begun at pc {begin_pc} (beginMTX {reg}); the transaction can never \
                         commit"
                    ),
                );
            }
        }
    }
    facts
}

/// Transfers one instruction. With `emit`, also records diagnostics and
/// per-instruction facts into `ctx`.
fn step(state: &mut State, pc: usize, instr: &Instr, ctx: &mut Ctx<'_>, emit: bool) {
    if emit {
        ctx.reads.clear();
        reg_reads(instr, &mut ctx.reads);
        let mut seen: u32 = 0;
        for i in 0..ctx.reads.len() {
            let r = ctx.reads[i];
            if state.is_defined(r) || seen & (1 << r.index()) != 0 {
                continue;
            }
            seen |= 1 << r.index();
            ctx.diag(
                Severity::Warning,
                "reg-use-before-def",
                pc,
                format!("{instr} reads {r}, which no path has written (it holds the architectural zero)"),
            );
        }
    }

    match *instr {
        Instr::BeginMtx { rvid } => {
            let leaving = state.regs[rvid.index()] == AbsVal::Const(0);
            if leaving {
                if let MtxState::Spec { reg, begin_pc } = state.mtx {
                    state.mtx = MtxState::Left { reg, begin_pc };
                }
                // beginMTX(0) outside a transaction is a no-op; keep state.
            } else {
                if emit {
                    if let MtxState::Spec { reg, begin_pc } = state.mtx {
                        ctx.diag(
                            Severity::Error,
                            "mtx-begin-while-speculative",
                            pc,
                            format!(
                                "beginMTX {rvid} while the MTX begun at pc {begin_pc} \
                                 (beginMTX {reg}) is still speculative; leave it first with \
                                 beginMTX(0) or commit it"
                            ),
                        );
                    }
                }
                state.mtx = MtxState::Spec {
                    reg: rvid,
                    begin_pc: pc,
                };
                if emit && ctx.facts.first_spec_begin.is_none() {
                    ctx.facts.first_spec_begin = Some(pc);
                }
            }
        }
        Instr::CommitMtx { rvid } => {
            match state.mtx {
                MtxState::Spec { reg, begin_pc } | MtxState::Left { reg, begin_pc } => {
                    if emit && reg != rvid && !same_known_value(state, reg, rvid) {
                        ctx.diag(
                            Severity::Error,
                            "mtx-vid-mismatch",
                            pc,
                            format!(
                                "commitMTX {rvid} but the pending MTX was begun at pc \
                                 {begin_pc} with beginMTX {reg}"
                            ),
                        );
                    }
                }
                MtxState::Committed { reg } => {
                    if emit && reg == rvid {
                        ctx.diag(
                            Severity::Error,
                            "mtx-double-commit",
                            pc,
                            format!(
                                "commitMTX {rvid} but this VID register was already committed \
                                 with no beginMTX in between"
                            ),
                        );
                    }
                }
                MtxState::Fresh => {
                    if emit {
                        ctx.diag(
                            Severity::Warning,
                            "mtx-end-without-begin",
                            pc,
                            format!("commitMTX {rvid} but no MTX was ever begun on this path"),
                        );
                    }
                }
                MtxState::Idle => {}
            }
            state.mtx = MtxState::Committed { reg: rvid };
        }
        Instr::AbortMtx { rvid } => {
            // The HyTM watchdog idiom aborts with the VID-exhaustion
            // sentinel (`li T0, 0x7FFF; abortMTX T0`) to escape a starved
            // VID-space spin and re-enter through the software slow path
            // (see `hmtx_runtime::emit`). The sentinel deliberately names
            // no pending VID and is legal in any MTX state, so constant
            // propagation suppresses both naming rules for it.
            let sentinel = state.regs[rvid.index()]
                == AbsVal::Const(u64::from(VID_EXHAUSTION_SENTINEL));
            match state.mtx {
                _ if sentinel => {}
                MtxState::Spec { reg, begin_pc } | MtxState::Left { reg, begin_pc } => {
                    if emit && reg != rvid && !same_known_value(state, reg, rvid) {
                        ctx.diag(
                            Severity::Error,
                            "mtx-vid-mismatch",
                            pc,
                            format!(
                                "abortMTX {rvid} but the pending MTX was begun at pc \
                                 {begin_pc} with beginMTX {reg}"
                            ),
                        );
                    }
                }
                MtxState::Fresh => {
                    if emit {
                        ctx.diag(
                            Severity::Warning,
                            "mtx-end-without-begin",
                            pc,
                            format!("abortMTX {rvid} but no MTX was ever begun on this path"),
                        );
                    }
                }
                MtxState::Committed { .. } | MtxState::Idle => {}
            }
            // Terminator: the block has no successors, so no state to carry.
        }
        Instr::VidReset if emit => {
            if let MtxState::Spec { begin_pc, .. } = state.mtx {
                ctx.diag(
                    Severity::Error,
                    "mtx-vidreset-speculative",
                    pc,
                    format!(
                        "vidreset inside the speculative MTX begun at pc {begin_pc}; §4.6 \
                         requires all outstanding commits drained before renumbering"
                    ),
                );
            }
        }
        Instr::InitMtx { .. } if emit => {
            if let MtxState::Spec { begin_pc, .. } = state.mtx {
                ctx.diag(
                    Severity::Warning,
                    "mtx-init-speculative",
                    pc,
                    format!(
                        "initMTX inside the speculative MTX begun at pc {begin_pc}; the \
                         recovery pc update itself becomes speculative state"
                    ),
                );
            }
        }
        Instr::Halt if emit => {
            if let MtxState::Spec { reg, begin_pc } = state.mtx {
                ctx.diag(
                    Severity::Error,
                    "mtx-halt-speculative",
                    pc,
                    format!(
                        "halt inside the speculative MTX begun at pc {begin_pc} \
                         (beginMTX {reg}); the transaction can never commit"
                    ),
                );
            }
        }
        Instr::Store { base, disp, .. } if emit => {
            let line = state.regs[base.index()]
                .as_const()
                .map(|b| b.wrapping_add(disp as u64) >> 6);
            ctx.facts.stores.push(StoreFact {
                pc,
                in_mtx: matches!(state.mtx, MtxState::Spec { .. }),
                base,
                disp,
                line,
            });
        }
        _ => {}
    }

    if let Some(rd) = reg_write(instr) {
        match state.mtx {
            MtxState::Spec { reg, begin_pc } if rd == reg && emit => {
                ctx.diag(
                    Severity::Error,
                    "mtx-vid-clobber",
                    pc,
                    format!(
                        "{instr} overwrites {reg}, the VID register of the speculative MTX \
                         begun at pc {begin_pc}"
                    ),
                );
            }
            MtxState::Left { reg, begin_pc }
                if rd == reg && ctx.program_has_commit && emit =>
            {
                ctx.diag(
                    Severity::Error,
                    "mtx-vid-clobber",
                    pc,
                    format!(
                        "{instr} overwrites {reg} while the MTX begun at pc {begin_pc} is \
                         pending (left but not committed); the later commitMTX {reg} will \
                         name the wrong VID"
                    ),
                );
            }
            MtxState::Committed { reg } if rd == reg => {
                // The committed VID is gone; forget it so a later commit of a
                // recomputed value is not misread as a double commit.
                state.mtx = MtxState::Idle;
            }
            _ => {}
        }
    }

    transfer_regs(state, instr);
}

/// Both registers hold the same known constant, so naming either is fine.
fn same_known_value(state: &State, a: Reg, b: Reg) -> bool {
    match (state.regs[a.index()].as_const(), state.regs[b.index()].as_const()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_isa::ProgramBuilder;

    fn analyze(p: &Program) -> (Vec<Diagnostic>, ProgramFacts) {
        let cfg = Cfg::build(p);
        let mut diags = Vec::new();
        let facts = analyze_program(0, p, &cfg, &mut diags);
        (diags, facts)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_begin_commit_produces_no_diagnostics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R3, 0x100000);
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.li(Reg::R2, 7);
        b.store(Reg::R2, Reg::R3, 0);
        b.commit_mtx(Reg::R1);
        b.halt();
        let (diags, facts) = analyze(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(facts.first_spec_begin, Some(2));
        assert!(facts.has_commit_or_abort);
        assert_eq!(facts.stores.len(), 1);
        assert!(facts.stores[0].in_mtx);
        assert_eq!(facts.stores[0].line, Some(0x100000 >> 6));
    }

    #[test]
    fn halt_while_speculative_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(rules(&diags).contains(&"mtx-halt-speculative"), "{diags:?}");
        let d = diags.iter().find(|d| d.rule == "mtx-halt-speculative").unwrap();
        assert_eq!(d.pc, 2);
        assert!(d.message.contains("pc 1"));
    }

    #[test]
    fn leave_then_halt_is_legal_ps_dswp_stage1() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1); // speculative
        b.li(Reg::R2, 0);
        b.begin_mtx(Reg::R2); // leave: constant zero
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hytm_watchdog_sentinel_abort_is_legal_anywhere() {
        // The watchdog fires before any MTX was begun on the path
        // (`li T0, 0x7FFF; abortMTX T0`): no `mtx-end-without-begin`.
        let mut b = ProgramBuilder::new();
        let proceed = b.new_label();
        b.li(Reg::R2, 1);
        b.branch_imm(hmtx_isa::Cond::Eq, Reg::R2, 1, proceed);
        b.li(Reg::R1, VID_EXHAUSTION_SENTINEL as i64);
        b.abort_mtx(Reg::R1);
        b.bind(proceed).unwrap();
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sentinel_abort_inside_a_pending_mtx_is_not_a_vid_mismatch() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 2);
        b.begin_mtx(Reg::R1);
        b.li(Reg::R2, VID_EXHAUSTION_SENTINEL as i64);
        b.abort_mtx(Reg::R2); // watchdog escape, not a naming bug
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(
            !rules(&diags).contains(&"mtx-vid-mismatch"),
            "{diags:?}"
        );
    }

    #[test]
    fn non_sentinel_abort_without_begin_still_warns() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 3);
        b.abort_mtx(Reg::R1);
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(rules(&diags).contains(&"mtx-end-without-begin"), "{diags:?}");
    }

    #[test]
    fn vid_clobber_inside_mtx_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.li(Reg::R1, 9); // clobber
        b.commit_mtx(Reg::R1);
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        let d = diags.iter().find(|d| d.rule == "mtx-vid-clobber").unwrap();
        assert_eq!(d.pc, 2);
    }

    #[test]
    fn use_before_def_is_a_warning_with_the_reading_pc() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg::R2, Reg::R5); // r5 never written
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        let d = diags.iter().find(|d| d.rule == "reg-use-before-def").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.pc, 0);
        assert!(d.message.contains("r5"), "{}", d.message);
    }

    #[test]
    fn divergent_merge_is_flagged_once() {
        let mut b = ProgramBuilder::new();
        let join = b.new_label();
        let skip = b.new_label();
        b.li(Reg::R1, 1);
        b.branch_imm(hmtx_isa::Cond::Eq, Reg::R2, 0, skip);
        b.begin_mtx(Reg::R1); // only one path begins
        b.bind(skip).unwrap();
        b.bind(join).unwrap();
        b.li(Reg::R3, 1);
        b.halt();
        let (diags, _) = analyze(&b.build().unwrap());
        let n = rules(&diags)
            .iter()
            .filter(|r| **r == "mtx-state-divergence")
            .count();
        assert_eq!(n, 1, "{diags:?}");
    }

    #[test]
    fn unreachable_code_is_not_analyzed() {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.mov(Reg::R2, Reg::R5); // unreachable use-before-def
        let (diags, _) = analyze(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
