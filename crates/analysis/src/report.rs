//! The verifier's result type: diagnostics plus the CFGs they were computed
//! over, with text/JSON rendering and CFG-annotated disassembly.

use hmtx_isa::Program;
use hmtx_types::{Diagnostic, Severity};

use crate::cfg::Cfg;

/// Result of verifying a program set (see [`crate::verify_set`]).
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All diagnostics, sorted by `(core, pc, severity, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    cfgs: Vec<Cfg>,
}

impl VerifyReport {
    pub(crate) fn new(mut diagnostics: Vec<Diagnostic>, cfgs: Vec<Cfg>) -> VerifyReport {
        diagnostics.sort_by(|a, b| {
            (a.core, a.pc, a.severity, a.rule).cmp(&(b.core, b.pc, b.severity, b.rule))
        });
        VerifyReport { diagnostics, cfgs }
    }

    /// No diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of [`Severity::Error`] diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warning`] diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Number of programs (cores) verified.
    pub fn program_count(&self) -> usize {
        self.cfgs.len()
    }

    /// Diagnostics re-sorted errors-first, for [`hmtx_types::SimError::Verification`].
    pub fn into_error_payload(self) -> Vec<Diagnostic> {
        let mut v = self.diagnostics;
        v.sort_by(|a, b| {
            (std::cmp::Reverse(a.severity), a.core, a.pc, a.rule).cmp(&(
                std::cmp::Reverse(b.severity),
                b.core,
                b.pc,
                b.rule,
            ))
        });
        v
    }

    /// CFG block id containing `pc` on `core`, if both are in range.
    pub fn block_of(&self, core: usize, pc: usize) -> Option<usize> {
        self.cfgs.get(core)?.block_of.get(pc).copied()
    }

    /// One line per diagnostic (empty string when clean).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The whole report as one JSON object (handwritten; the workspace has
    /// no serde).
    pub fn render_json(&self) -> String {
        let body: Vec<String> = self.diagnostics.iter().map(|d| d.render_json()).collect();
        format!(
            "{{\"programs\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            self.program_count(),
            self.error_count(),
            self.warning_count(),
            body.join(",")
        )
    }

    /// Disassembles `program` (which must be the one verified as `core`)
    /// with each instruction annotated by its CFG block id and any
    /// diagnostics anchored at that pc.
    pub fn annotated_disassembly(&self, core: usize, program: &Program) -> String {
        program.disassemble_annotated(|pc| {
            let block = self.block_of(core, pc)?;
            let mut note = format!("B{block}");
            for d in self
                .diagnostics
                .iter()
                .filter(|d| d.core == core && d.pc == pc)
            {
                note.push_str(&format!(" <- {}[{}]", d.severity, d.rule));
            }
            Some(note)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_set;
    use hmtx_isa::{ProgramBuilder, Reg};

    #[test]
    fn report_counts_and_renders() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.halt(); // error: halt while speculative
        let p = b.build().unwrap();
        let report = verify_set(&[&p]);
        assert!(!report.is_clean());
        // Two errors: halting while speculative, and (set-level) nobody in
        // the set ever commits.
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.program_count(), 1);
        let json = report.render_json();
        assert!(json.contains("\"errors\":2"), "{json}");
        assert!(json.contains("mtx-halt-speculative"), "{json}");
        let text = report.render_text();
        assert!(text.contains("core 0 pc 2"), "{text}");
    }

    #[test]
    fn annotated_disassembly_marks_blocks_and_findings() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.li(Reg::R1, 1);
        b.branch_imm(hmtx_isa::Cond::Eq, Reg::R1, 0, l);
        b.begin_mtx(Reg::R1);
        b.bind(l).unwrap();
        b.halt();
        let p = b.build().unwrap();
        let report = verify_set(&[&p]);
        let text = report.annotated_disassembly(0, &p);
        assert!(text.contains("; B0"), "{text}");
        assert!(text.lines().count() == p.len());
        // The divergent merge at the halt block shows up inline.
        assert!(text.contains("error[mtx-state-divergence]"), "{text}");
    }

    #[test]
    fn error_payload_sorts_errors_first() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg::R2, Reg::R5); // warning at pc 0
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.halt(); // error at pc 3
        let p = b.build().unwrap();
        let payload = verify_set(&[&p]).into_error_payload();
        assert_eq!(payload.first().map(|d| d.severity), Some(Severity::Error));
    }
}
