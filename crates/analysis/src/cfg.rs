//! Control-flow graph construction over [`hmtx_isa::Program`].
//!
//! Blocks are maximal straight-line runs of instructions. Leaders are pc 0,
//! every branch/jump target, every `initMTX` handler, and the instruction
//! after any control-flow instruction or `abortMTX`. `abortMTX` terminates a
//! block with no successors: architecturally the core squashes and the
//! *host* restarts it at the recovery pc, so in-program control never falls
//! through (see `crates/machine`'s `StepOutcome::Misspec`).
//!
//! Jumping or falling through to `program.len()` is an implicit halt; such
//! blocks are flagged [`Block::implicit_exit`].

use hmtx_isa::{Instr, Program};

/// One basic block: instructions `start..end` (end exclusive).
#[derive(Debug, Clone)]
pub struct Block {
    /// Block id (index into [`Cfg::blocks`]).
    pub id: usize,
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Control can leave the program from this block without an explicit
    /// `halt` (falls off the end, or jumps/branches to `program.len()`).
    pub implicit_exit: bool,
}

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in ascending `start` order (block 0 is the entry).
    pub blocks: Vec<Block>,
    /// `block_of[pc]` = id of the block containing `pc`.
    pub block_of: Vec<usize>,
    /// `scc_of[block]` = id of the block's strongly connected component.
    /// Ids are a reverse-topological order of the condensation (every edge
    /// goes from a higher scc id to a lower one).
    pub scc_of: Vec<usize>,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// `in_cycle[block]` = the block lies on some CFG cycle (its SCC has
    /// more than one block, or it has a self edge).
    pub in_cycle: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `program`. An empty program yields an empty CFG.
    pub fn build(program: &Program) -> Cfg {
        let code = program.instrs();
        let len = code.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                scc_of: Vec::new(),
                scc_count: 0,
                in_cycle: Vec::new(),
            };
        }

        let mut leader = vec![false; len + 1];
        leader[0] = true;
        for (pc, i) in code.iter().enumerate() {
            match *i {
                Instr::Branch { target, .. } => {
                    leader[target.min(len)] = true;
                    leader[pc + 1] = true;
                }
                Instr::Jump { target } => {
                    leader[target.min(len)] = true;
                    leader[pc + 1] = true;
                }
                Instr::Halt | Instr::AbortMtx { .. } => leader[pc + 1] = true,
                Instr::InitMtx { handler } => leader[handler.min(len)] = true,
                _ => {}
            }
        }

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0;
        for (pc, &is_leader) in leader.iter().enumerate().skip(1).take(len) {
            if pc == len || is_leader {
                let id = blocks.len();
                for slot in block_of.iter_mut().take(pc).skip(start) {
                    *slot = id;
                }
                blocks.push(Block {
                    id,
                    start,
                    end: pc,
                    succs: Vec::new(),
                    implicit_exit: false,
                });
                start = pc;
            }
        }

        for block in &mut blocks {
            let last_pc = block.end - 1;
            let mut succs = Vec::new();
            let mut implicit_exit = false;
            let edge = |target: usize, succs: &mut Vec<usize>, exit: &mut bool| {
                if target >= len {
                    *exit = true;
                } else {
                    let t = block_of[target];
                    if !succs.contains(&t) {
                        succs.push(t);
                    }
                }
            };
            match code[last_pc] {
                Instr::Branch { target, .. } => {
                    edge(target, &mut succs, &mut implicit_exit);
                    edge(last_pc + 1, &mut succs, &mut implicit_exit);
                }
                Instr::Jump { target } => edge(target, &mut succs, &mut implicit_exit),
                Instr::Halt | Instr::AbortMtx { .. } => {}
                _ => edge(last_pc + 1, &mut succs, &mut implicit_exit),
            }
            block.succs = succs;
            block.implicit_exit = implicit_exit;
        }

        let adj: Vec<Vec<usize>> = blocks.iter().map(|b| b.succs.clone()).collect();
        let (scc_of, scc_count) = scc(&adj);
        let mut in_cycle = vec![false; blocks.len()];
        let mut scc_size = vec![0usize; scc_count];
        for &s in &scc_of {
            scc_size[s] += 1;
        }
        for b in &blocks {
            in_cycle[b.id] = scc_size[scc_of[b.id]] > 1 || b.succs.contains(&b.id);
        }

        Cfg {
            blocks,
            block_of,
            scc_of,
            scc_count,
            in_cycle,
        }
    }

    /// Whether the instruction at `pc` lies on a CFG cycle.
    pub fn pc_in_cycle(&self, pc: usize) -> bool {
        self.in_cycle[self.block_of[pc]]
    }
}

/// Iterative Tarjan SCC over an adjacency list. Returns `(scc_of,
/// scc_count)`; scc ids come out in reverse topological order of the
/// condensation (successors get lower ids). Also used by the set-level
/// queue-deadlock check on the core wait-for graph.
pub(crate) fn scc(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (node, next-successor-position).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        work.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut i)) = work.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_isa::{Cond, ProgramBuilder, Reg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1).li(Reg::R2, 2).halt();
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.blocks[0].implicit_exit);
        assert!(!cfg.in_cycle[0]);
    }

    #[test]
    fn loop_blocks_are_in_cycle() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::GeU, Reg::R1, 10, done);
        b.jump(head);
        b.bind(done).unwrap();
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        // blocks: [li], [addi, branch], [jump], [halt]
        assert_eq!(cfg.blocks.len(), 4);
        assert!(!cfg.in_cycle[0]);
        assert!(cfg.in_cycle[cfg.block_of[1]], "loop body in cycle");
        assert!(cfg.in_cycle[cfg.block_of[3]], "back edge block in cycle");
        assert!(!cfg.in_cycle[cfg.block_of[4]], "exit not in cycle");
        assert!(cfg.pc_in_cycle(2));
    }

    #[test]
    fn falling_off_the_end_is_an_implicit_exit() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].implicit_exit);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn abort_terminates_a_block_with_no_successors() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.abort_mtx(Reg::R1);
        b.halt(); // unreachable continuation
        let cfg = Cfg::build(&b.build().unwrap());
        let abort_block = cfg.block_of[1];
        assert!(cfg.blocks[abort_block].succs.is_empty());
        assert!(!cfg.blocks[abort_block].implicit_exit);
        // The halt after the abort starts its own (unreachable) block.
        assert_ne!(cfg.block_of[2], abort_block);
    }

    #[test]
    fn scc_ids_are_reverse_topological() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head).unwrap();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::GeU, Reg::R1, 4, done);
        b.jump(head);
        b.bind(done).unwrap();
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        // Every edge must go from a higher scc id to a lower-or-equal one.
        for blk in &cfg.blocks {
            for &s in &blk.succs {
                assert!(
                    cfg.scc_of[blk.id] >= cfg.scc_of[s],
                    "edge {} -> {} violates reverse topo order",
                    blk.id,
                    s
                );
            }
        }
    }

    #[test]
    fn empty_program_yields_empty_cfg() {
        let cfg = Cfg::build(&ProgramBuilder::new().build().unwrap());
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.scc_count, 0);
    }
}
