//! Parallelization runtime for the HMTX reproduction: given a loop body
//! (the [`LoopBody`] trait), generates guest programs that execute it under
//! the paradigms of Figure 1 — Sequential, DOALL, DOACROSS, DSWP, and
//! PS-DSWP — using the HMTX instructions of §3 (`beginMTX`/`commitMTX`/
//! `abortMTX`), ordered commits, VID wraparound with §4.6 resets, and
//! host-side misspeculation recovery.
//!
//! # Examples
//!
//! A trivial loop that sums `n` into a memory cell, parallelized PS-DSWP:
//!
//! ```
//! use hmtx_isa::ProgramBuilder;
//! use hmtx_machine::Machine;
//! use hmtx_runtime::{run_loop, LoopBody, LoopEnv, Paradigm, env::regs};
//! use hmtx_types::{Addr, MachineConfig, Vid};
//!
//! struct Sum;
//! impl LoopBody for Sum {
//!     fn iterations(&self) -> u64 { 50 }
//!     fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
//!     fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
//!         b.mov(regs::ITEM, regs::N); // the "work item" is just n
//!     }
//!     fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
//!         // Store 2*n into this iteration's own cell (disjoint lines).
//!         b.shl(hmtx_isa::Reg::R1, regs::ITEM, 6);
//!         b.addi(hmtx_isa::Reg::R1, hmtx_isa::Reg::R1, 0x100000);
//!         b.add(hmtx_isa::Reg::R2, regs::ITEM, regs::ITEM);
//!         b.store(hmtx_isa::Reg::R2, hmtx_isa::Reg::R1, 0);
//!     }
//! }
//!
//! let cfg = MachineConfig::test_default();
//! let (machine, report) = run_loop(Paradigm::PsDswp, &Sum, &cfg, 10_000_000)?;
//! assert_eq!(machine.mem().peek_word(Addr(0x100000 + 5 * 64), Vid(0)), 10);
//! assert_eq!(report.recoveries, 0);
//! # Ok::<(), hmtx_types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod body;
pub mod emit;
pub mod env;
pub mod runner;

pub use body::LoopBody;
pub use emit::{
    build_paradigm, build_paradigm_verified, verify_generated, GeneratedThread, GeneratedThreads,
    Paradigm,
};
pub use env::LoopEnv;
pub use runner::{
    chaos_invariant_check, resync_rcb, run_loop, speedup, squeezed_config, DemotionCause,
    HytmMix, RecoveryRecord, RecoveryRung, RunReport, VID_EXHAUSTION_SENTINEL,
};

#[cfg(test)]
mod emit_tests;
#[cfg(test)]
mod runtime_tests;
