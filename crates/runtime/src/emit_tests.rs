//! Structural tests of the generated paradigm programs: the orchestration
//! code must contain exactly the HMTX instruction sequences the paper's
//! Figure 3 prescribes.

use hmtx_isa::{Instr, ProgramBuilder};
use hmtx_machine::Machine;

use crate::body::LoopBody;
use crate::emit::{build_paradigm, build_single_tx, Paradigm};
use crate::env::{regs, LoopEnv};

struct Nop;

impl LoopBody for Nop {
    fn iterations(&self) -> u64 {
        4
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.compute(1);
    }
}

fn env(workers: usize) -> LoopEnv {
    LoopEnv::new(63, workers)
}

fn count<F: Fn(&Instr) -> bool>(p: &hmtx_isa::Program, f: F) -> usize {
    p.instrs().iter().filter(|i| f(i)).count()
}

#[test]
fn sequential_emits_no_mtx_instructions() {
    let g = build_paradigm(Paradigm::Sequential, &Nop, &env(1), 1).unwrap();
    assert_eq!(g.threads.len(), 1);
    let p = &g.threads[0].program;
    assert_eq!(count(p, |i| matches!(i, Instr::BeginMtx { .. })), 0);
    assert_eq!(count(p, |i| matches!(i, Instr::CommitMtx { .. })), 0);
    assert_eq!(count(p, |i| matches!(i, Instr::Produce { .. })), 0);
}

#[test]
fn psdswp_stage1_publishes_and_routes() {
    let g = build_paradigm(Paradigm::PsDswp, &Nop, &env(3), 1).unwrap();
    assert_eq!(g.threads.len(), 4, "stage 1 + 3 workers");
    let stage1 = &g.threads[0].program;
    // Two beginMTX per iteration (enter with vid, leave with 0), the
    // producedNode store, one produce per worker route plus sentinels.
    assert_eq!(count(stage1, |i| matches!(i, Instr::BeginMtx { .. })), 2);
    assert_eq!(
        count(stage1, |i| matches!(i, Instr::CommitMtx { .. })),
        0,
        "stage 1 never commits"
    );
    assert_eq!(count(stage1, |i| matches!(i, Instr::Produce { .. })), 3 + 3);
    assert!(
        count(stage1, |i| matches!(i, Instr::Store { .. })) >= 1,
        "producedNode store"
    );
    assert_eq!(count(stage1, |i| matches!(i, Instr::VidReset)), 0);
    for (w, t) in g.threads[1..].iter().enumerate() {
        assert_eq!(t.core, 1 + w);
        let p = &t.program;
        assert_eq!(
            count(p, |i| matches!(i, Instr::CommitMtx { .. })),
            1,
            "worker {w} commits"
        );
        assert_eq!(
            count(p, |i| matches!(i, Instr::VidReset)),
            1,
            "worker {w} owns the reset"
        );
        assert_eq!(count(p, |i| matches!(i, Instr::Consume { .. })), 1);
    }
}

#[test]
fn doall_workers_commit_and_stride() {
    let g = build_paradigm(Paradigm::Doall, &Nop, &env(4), 1).unwrap();
    assert_eq!(g.threads.len(), 4);
    for t in &g.threads {
        let p = &t.program;
        assert_eq!(count(p, |i| matches!(i, Instr::CommitMtx { .. })), 1);
        // No queues at all in DOALL.
        assert_eq!(count(p, |i| matches!(i, Instr::Produce { .. })), 0);
        assert_eq!(count(p, |i| matches!(i, Instr::Consume { .. })), 0);
    }
}

#[test]
fn doacross_workers_pass_the_token_ring() {
    let g = build_paradigm(Paradigm::Doacross, &Nop, &env(4), 1).unwrap();
    for t in &g.threads {
        let p = &t.program;
        assert_eq!(
            count(p, |i| matches!(i, Instr::Produce { .. })),
            1,
            "token to successor"
        );
        assert_eq!(
            count(p, |i| matches!(i, Instr::Consume { .. })),
            1,
            "token from predecessor"
        );
        assert_eq!(count(p, |i| matches!(i, Instr::CommitMtx { .. })), 1);
    }
}

#[test]
fn single_tx_program_is_one_guarded_transaction() {
    let g = build_single_tx(&Nop, &env(2), 3).unwrap();
    assert_eq!(g.threads.len(), 1);
    let p = &g.threads[0].program;
    assert_eq!(count(p, |i| matches!(i, Instr::BeginMtx { .. })), 2);
    assert_eq!(count(p, |i| matches!(i, Instr::CommitMtx { .. })), 1);
    assert_eq!(count(p, |i| matches!(i, Instr::Halt)), 1);
}

#[test]
fn dswp_is_psdswp_with_one_worker() {
    let dswp = build_paradigm(Paradigm::Dswp, &Nop, &env(1), 1).unwrap();
    assert_eq!(dswp.threads.len(), 2);
    assert_eq!(dswp.threads[1].core, 1);
}

#[test]
fn generated_programs_disassemble_and_reassemble() {
    // The orchestration code itself must round-trip through the assembler.
    for paradigm in [
        Paradigm::Sequential,
        Paradigm::Doall,
        Paradigm::Doacross,
        Paradigm::PsDswp,
    ] {
        let g = build_paradigm(paradigm, &Nop, &env(2), 1).unwrap();
        for t in &g.threads {
            let text: String = t
                .program
                .disassemble()
                .lines()
                .map(|l| l.split_once(':').unwrap().1.trim().to_string() + "\n")
                .collect();
            let reparsed = hmtx_isa::assemble(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", paradigm.name()));
            assert_eq!(&reparsed, t.program.as_ref(), "{}", paradigm.name());
        }
    }
}
