//! End-to-end paradigm tests: every paradigm must produce the sequential
//! result, VID wraparound must reset cleanly, and true conflicts must
//! recover with forward progress.

use hmtx_core::{AccessKind, AccessRequest};
use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_types::{Addr, CoreId, MachineConfig, SimError, Vid};

use crate::body::LoopBody;
use crate::emit::Paradigm;
use crate::env::{rcb, regs, LoopEnv};
use crate::runner::{resync_rcb, run_loop, run_single_tx, RecoveryRung};

const CELLS: u64 = 0x0010_0000;

fn cfg() -> MachineConfig {
    MachineConfig::test_default()
}

/// Conflict-free: stage 1 passes `n`, stage 2 writes `3n` into cell `n`.
struct FillCells {
    iters: u64,
}

impl LoopBody for FillCells {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.shl(Reg::R1, regs::ITEM, 6);
        b.addi(Reg::R1, Reg::R1, CELLS as i64);
        b.mul(Reg::R2, regs::ITEM, 3);
        b.store(Reg::R2, Reg::R1, 0);
    }
}

/// Loop-carried: stage 1 keeps a running sum in a state slot; stage 2
/// writes the prefix sum into cell `n` and emits it as output.
struct ChainSum {
    iters: u64,
}

impl LoopBody for ChainSum {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.add(Reg::R2, Reg::R2, regs::N);
        b.store(Reg::R2, Reg::R1, 0);
        b.mov(regs::ITEM, Reg::R2);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.sub(Reg::R3, regs::N, 0); // R3 = n
        b.shl(Reg::R3, Reg::R3, 6);
        b.addi(Reg::R3, Reg::R3, CELLS as i64);
        b.store(regs::ITEM, Reg::R3, 0);
        b.out(regs::ITEM);
    }
    fn expected_outputs(&self) -> Option<u64> {
        Some(self.iters)
    }
}

/// Deliberately conflicting: every stage-2 transaction read-modify-writes
/// one shared accumulator.
struct SharedAccum {
    iters: u64,
}

impl LoopBody for SharedAccum {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.li(Reg::R1, CELLS as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.add(Reg::R2, Reg::R2, regs::ITEM);
        b.store(Reg::R2, Reg::R1, 0);
    }
}

/// Early exit: stage 1 stops the loop at iteration `stop_at`.
struct EarlyStop {
    stop_at: u64,
}

impl LoopBody for EarlyStop {
    fn iterations(&self) -> u64 {
        1_000_000 // effectively unbounded; STOP terminates
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
        let cont = b.new_label();
        b.branch_imm(Cond::LtU, regs::N, self.stop_at as i64, cont);
        b.li(regs::STOP, 1);
        b.bind(cont).unwrap();
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.out(regs::ITEM);
    }
}

fn check_cells(machine: &Machine, iters: u64, f: impl Fn(u64) -> u64) {
    for n in 1..=iters {
        assert_eq!(
            machine.mem().peek_word(Addr(CELLS + n * 64), Vid(0)),
            f(n),
            "cell {n}"
        );
    }
}

#[test]
fn fill_cells_all_paradigms_match_sequential() {
    for paradigm in [
        Paradigm::Sequential,
        Paradigm::Doall,
        Paradigm::Doacross,
        Paradigm::Dswp,
        Paradigm::PsDswp,
    ] {
        let body = FillCells { iters: 40 };
        let (machine, report) = run_loop(paradigm, &body, &cfg(), 10_000_000).unwrap_or_else(|e| {
            panic!("{} failed: {e}", paradigm.name());
        });
        assert_eq!(
            report.recoveries,
            0,
            "{} should not misspeculate",
            paradigm.name()
        );
        check_cells(&machine, 40, |n| 3 * n);
    }
}

#[test]
fn chain_sum_loop_carried_state_via_versioned_memory() {
    let mut seq_outputs = None;
    for paradigm in [
        Paradigm::Sequential,
        Paradigm::Doacross,
        Paradigm::Dswp,
        Paradigm::PsDswp,
    ] {
        let body = ChainSum { iters: 30 };
        let (machine, report) = run_loop(paradigm, &body, &cfg(), 10_000_000).unwrap_or_else(|e| {
            panic!("{} failed: {e}", paradigm.name());
        });
        assert_eq!(report.recoveries, 0, "{}", paradigm.name());
        check_cells(&machine, 30, |n| n * (n + 1) / 2);
        match &seq_outputs {
            None => seq_outputs = Some(report.outputs),
            Some(expected) => {
                assert_eq!(
                    &report.outputs,
                    expected,
                    "{} output order",
                    paradigm.name()
                )
            }
        }
    }
}

#[test]
fn true_conflicts_recover_with_forward_progress() {
    let body = SharedAccum { iters: 25 };
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &cfg(), 50_000_000).unwrap();
    assert_eq!(
        machine.mem().peek_word(Addr(CELLS), Vid(0)),
        (1..=25).sum::<u64>(),
        "serializable final value despite conflicts"
    );
    assert!(
        report.recoveries > 0,
        "shared accumulator must actually conflict"
    );
}

#[test]
fn vid_wraparound_resets_and_completes() {
    let mut c = cfg();
    c.hmtx.vid_bits = 4; // max VID 15 -> many resets over 100 iterations
    let body = FillCells { iters: 100 };
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &c, 50_000_000).unwrap();
    assert_eq!(report.recoveries, 0);
    assert!(
        machine.mem().stats().vid_resets >= 5,
        "expected many VID resets, got {}",
        machine.mem().stats().vid_resets
    );
    check_cells(&machine, 100, |n| 3 * n);
}

#[test]
fn early_stop_terminates_pipeline() {
    let body = EarlyStop { stop_at: 17 };
    let (_, report) = run_loop(Paradigm::PsDswp, &body, &cfg(), 10_000_000).unwrap();
    assert_eq!(report.outputs, (1..=17).collect::<Vec<u64>>());
}

#[test]
fn doall_scales_against_sequential() {
    let body = FillCells { iters: 200 };
    let (_, seq) = run_loop(Paradigm::Sequential, &body, &cfg(), 50_000_000).unwrap();
    let body = FillCells { iters: 200 };
    let (_, par) = run_loop(Paradigm::Doall, &body, &cfg(), 50_000_000).unwrap();
    // The loop body is tiny, so overheads dominate; just require overlap.
    assert!(
        par.cycles < seq.cycles * 2,
        "DOALL wildly slower: {} vs {}",
        par.cycles,
        seq.cycles
    );
}

#[test]
fn committed_transactions_match_iterations() {
    let body = FillCells { iters: 40 };
    let (machine, _) = run_loop(Paradigm::PsDswp, &body, &cfg(), 10_000_000).unwrap();
    assert_eq!(machine.mem().stats().commits, 40);
}

#[test]
fn recovery_frees_vid_space_after_abort() {
    // A 4-bit VID space (15 usable VIDs) cannot cover 40 iterations plus
    // the re-executions that conflicts force unless every recovery actually
    // returns aborted VIDs to the allocator via a reset.
    let mut c = cfg();
    c.hmtx.vid_bits = 4;
    let body = SharedAccum { iters: 40 };
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &c, 100_000_000).unwrap();
    assert!(report.recoveries > 0, "shared accumulator must conflict");
    assert!(
        machine.mem().stats().vid_resets > 0,
        "recovery must free the VID space"
    );
    assert_eq!(
        machine.mem().peek_word(Addr(CELLS), Vid(0)),
        (1..=40).sum::<u64>(),
        "serializable final value despite conflicts in a tiny VID space"
    );
}

#[test]
fn rcb_resync_drains_speculative_pollution_and_writes_true_values() {
    let c = cfg();
    let env = LoopEnv::new(c.hmtx.max_vid().0, 2).with_pipeline_window(c.pipeline_window);
    let mut machine = Machine::new(c);
    // Pollute the control block line with a lingering speculative store, as
    // a crashed worker would leave behind.
    let req = AccessRequest {
        core: CoreId(1),
        addr: env.rcb.offset(rcb::LAST_COMMITTED),
        kind: AccessKind::Write(99),
        vid: Vid(3),
        wrong_path: false,
    };
    machine.mem_mut().access(0, &req).unwrap();
    resync_rcb(&mut machine, &env, 7, 0).unwrap();
    assert_eq!(
        machine.mem().peek_word(env.rcb.offset(rcb::LAST_COMMITTED), Vid(0)),
        7,
        "last-committed slot must hold the true commit count"
    );
    assert_eq!(
        machine.mem().peek_word(env.rcb.offset(rcb::VID_BASE), Vid(0)),
        7,
        "VID base must match the commit count after a reset"
    );
}

#[test]
fn serialized_rung_commits_the_stuck_transaction_exactly_once() {
    let c = cfg();
    let env = LoopEnv::new(c.hmtx.max_vid().0, 2).with_pipeline_window(c.pipeline_window);
    let mut machine = Machine::new(c);
    let body = ChainSum { iters: 5 };
    body.build_image(&mut machine, &env);
    let before = machine.mem().stats().commits;
    let outcome = run_single_tx(&mut machine, &body, &env, 1).unwrap();
    assert!(outcome.is_none(), "a lone transaction cannot conflict");
    assert_eq!(
        machine.mem().stats().commits,
        before + 1,
        "exactly one commit"
    );
    assert_eq!(
        machine.committed_output(),
        &[1],
        "transaction 1 emits its output exactly once"
    );
    check_cells(&machine, 1, |n| n * (n + 1) / 2);
}

#[test]
fn ladder_escalates_to_single_tx_when_parallel_retries_exhausted() {
    let mut c = cfg();
    c.recovery_parallel_retries = 0;
    let body = SharedAccum { iters: 10 };
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &c, 50_000_000).unwrap();
    assert_eq!(
        machine.mem().peek_word(Addr(CELLS), Vid(0)),
        (1..=10).sum::<u64>()
    );
    assert!(report.recoveries > 0);
    assert_eq!(report.recovery_log.len() as u64, report.recoveries);
    assert!(
        report
            .recovery_log
            .iter()
            .all(|r| r.rung == RecoveryRung::SingleTx || r.rung == RecoveryRung::Parallel),
        "no injected faults, so the non-speculative rung must never engage"
    );
    assert!(
        report
            .recovery_log
            .iter()
            .any(|r| r.rung == RecoveryRung::SingleTx),
        "zero parallel retries must escalate straight to the serialized rung"
    );
}

#[test]
fn livelock_reported_after_max_recoveries() {
    let mut c = cfg();
    c.max_recoveries = 1;
    c.recovery_parallel_retries = 1_000_000; // never escalate, so conflicts recur
    let body = SharedAccum { iters: 20 };
    let err = run_loop(Paradigm::PsDswp, &body, &c, 500_000_000).unwrap_err();
    match err {
        SimError::Livelock { recoveries, .. } => assert_eq!(recoveries, 2),
        other => panic!("expected Livelock, got {other:?}"),
    }
}

#[test]
fn interrupts_with_pipeline_still_correct() {
    let mut c = cfg();
    c.interrupt_period = 2_000;
    let body = ChainSum { iters: 30 };
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &c, 20_000_000).unwrap();
    assert_eq!(
        report.recoveries, 0,
        "interrupts must not fault transactions"
    );
    check_cells(&machine, 30, |n| n * (n + 1) / 2);
}
