//! Conventions shared between the runtime's generated orchestration code and
//! workload-emitted loop bodies: register allocation, the runtime control
//! block, and well-known guest addresses.

use hmtx_types::Addr;

/// Base of the runtime-reserved guest address region.
pub const RUNTIME_REGION_BASE: u64 = 0x0001_0000;

/// Base address workloads should allocate their data above.
pub const WORKLOAD_REGION_BASE: u64 = 0x0010_0000;

/// Register conventions. Workload bodies own `r0..r15`; the runtime owns
/// `r16..r31`.
pub mod regs {
    use hmtx_isa::Reg;

    /// The current work item, set by stage 1 for stage 2.
    pub const ITEM: Reg = Reg::R16;
    /// Early-stop flag: a stage-1 body sets this nonzero to make the current
    /// iteration the last one.
    pub const STOP: Reg = Reg::R17;
    /// Dynamic count of validated speculative loads this iteration
    /// (consumed by the SMTX cost model).
    pub const SPEC_LOADS: Reg = Reg::R14;
    /// Dynamic count of validated speculative stores this iteration.
    pub const SPEC_STORES: Reg = Reg::R15;
    /// Worker/stride register (runtime).
    pub const STRIDE: Reg = Reg::R18;
    /// First-iteration flag (runtime, DOACROSS token skip).
    pub const FIRST: Reg = Reg::R19;
    /// Scratch (runtime).
    pub const T0: Reg = Reg::R20;
    /// Scratch (runtime).
    pub const T1: Reg = Reg::R21;
    /// Maximum VID (runtime).
    pub const MAX_VID: Reg = Reg::R22;
    /// Runtime control block base address (runtime).
    pub const RCB: Reg = Reg::R23;
    /// Current VID (runtime).
    pub const VID: Reg = Reg::R24;
    /// Current global transaction number `n`, 1-based (runtime).
    pub const N: Reg = Reg::R25;
    /// Iteration bound / general runtime constant.
    pub const BOUND: Reg = Reg::R26;
    /// Produced-slot base address (runtime).
    pub const SLOT: Reg = Reg::R27;
}

/// Byte offsets of the runtime control block fields.
pub mod rcb {
    /// `last_committed`: highest globally committed transaction number.
    pub const LAST_COMMITTED: i64 = 0;
    /// `vid_base`: transaction number at the last VID reset; the VID of
    /// transaction `n` is `n - vid_base`.
    pub const VID_BASE: i64 = 8;
}

/// Well-known addresses and constants handed to emitters.
///
/// # Examples
///
/// ```
/// use hmtx_runtime::LoopEnv;
/// let env = LoopEnv::new(63, 3);
/// assert_eq!(env.max_vid, 63);
/// assert!(env.produced_slot.0 >= hmtx_runtime::env::RUNTIME_REGION_BASE);
/// ```
#[derive(Debug, Clone)]
pub struct LoopEnv {
    /// Runtime control block base (on its own cache line).
    pub rcb: Addr,
    /// The single shared location stage 1 speculatively stores each work
    /// item to (the paper's `producedNode`, §3.2). Versioned memory keeps
    /// per-transaction copies apart.
    pub produced_slot: Addr,
    /// Base of the stage-1 induction-state slots (one cache line each);
    /// workload stage-1 bodies keep their loop-carried state here so that
    /// recovery can restart from committed memory.
    pub state_base: Addr,
    /// Base of the per-worker SMTX log regions.
    pub smtx_log_base: Addr,
    /// Highest usable VID before a reset (2^m - 1).
    pub max_vid: u16,
    /// Number of parallel-stage workers.
    pub workers: usize,
    /// Maximum in-flight transactions (see
    /// [`MachineConfig::pipeline_window`](hmtx_types::MachineConfig)).
    pub pipeline_window: u64,
    /// VID-exhaustion watchdog budget for the begin guard (HyTM mode).
    /// `None` (the default, and every non-HyTM paradigm) emits the plain
    /// unbounded guard spin; `Some(n)` bounds the VID-space spin to `n`
    /// iterations and then aborts with the exhaustion sentinel VID so the
    /// runtime can demote instead of livelocking.
    pub vid_watchdog: Option<u64>,
}

impl LoopEnv {
    /// Builds the standard environment for `workers` parallel-stage workers.
    pub fn new(max_vid: u16, workers: usize) -> Self {
        LoopEnv {
            rcb: Addr(RUNTIME_REGION_BASE),
            produced_slot: Addr(RUNTIME_REGION_BASE + 0x100),
            state_base: Addr(RUNTIME_REGION_BASE + 0x200),
            smtx_log_base: Addr(RUNTIME_REGION_BASE + 0x1_0000),
            max_vid,
            workers,
            pipeline_window: 16,
            vid_watchdog: None,
        }
    }

    /// Sets the in-flight transaction bound.
    pub fn with_pipeline_window(mut self, window: u64) -> Self {
        self.pipeline_window = window;
        self
    }

    /// Bounds the begin guard's VID-space spin (HyTM mode; `0` = unbounded,
    /// identical to the default `None`).
    pub fn with_vid_watchdog(mut self, spins: u64) -> Self {
        self.vid_watchdog = if spins == 0 { None } else { Some(spins) };
        self
    }

    /// The address of stage-1 state slot `i` (each on its own line).
    pub fn state_slot(&self, i: u64) -> Addr {
        Addr(self.state_base.0 + i * 64)
    }

    /// The SMTX log region for worker `w` (64 KiB each).
    pub fn smtx_log_region(&self, w: usize) -> Addr {
        Addr(self.smtx_log_base.0 + (w as u64) * 0x1_0000)
    }
}

/// Convenience: all runtime-owned registers (for documentation and tests).
pub fn runtime_registers() -> Vec<hmtx_isa::Reg> {
    use regs::*;
    vec![
        ITEM,
        STOP,
        SPEC_LOADS,
        SPEC_STORES,
        STRIDE,
        FIRST,
        T0,
        T1,
        MAX_VID,
        RCB,
        VID,
        N,
        BOUND,
        SLOT,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let env = LoopEnv::new(63, 3);
        assert!(env.rcb.0 < env.produced_slot.0);
        assert!(env.produced_slot.0 < env.state_base.0);
        assert!(env.state_base.0 < env.smtx_log_base.0);
        assert!(env.smtx_log_base.0 < WORKLOAD_REGION_BASE);
        assert_ne!(env.rcb.line(), env.produced_slot.line());
    }

    #[test]
    fn state_slots_live_on_distinct_lines() {
        let env = LoopEnv::new(63, 2);
        assert_ne!(env.state_slot(0).line(), env.state_slot(1).line());
    }

    #[test]
    fn smtx_log_regions_do_not_overlap() {
        let env = LoopEnv::new(63, 3);
        let r0 = env.smtx_log_region(0);
        let r1 = env.smtx_log_region(1);
        assert!(r1.0 - r0.0 >= 0x1_0000);
    }

    #[test]
    fn runtime_registers_are_r14_and_up() {
        for r in runtime_registers() {
            assert!(
                r.index() >= 14,
                "{r} must not collide with workload registers"
            );
        }
    }
}
