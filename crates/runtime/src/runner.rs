//! The run harness: dispatches a parallelized loop onto a machine, handles
//! misspeculation recovery, and reports timing/statistics.
//!
//! # The recovery ladder
//!
//! Misspeculation is a modeled architectural event, never a fatal error. On
//! each abort the runtime re-synchronizes the control block and climbs an
//! escalation ladder keyed on how often the *same* transaction `n0` has
//! already failed:
//!
//! 1. **Parallel re-dispatch** ([`RecoveryRung::Parallel`]) — optimistically
//!    restart the paradigm from the first uncommitted transaction, up to
//!    `MachineConfig::recovery_parallel_retries` times per stuck `n0`.
//! 2. **Serialized re-execution** ([`RecoveryRung::SingleTx`]) — run `n0`
//!    alone with the full begin/commit protocol; a genuine cross-iteration
//!    conflict cannot recur with no concurrent transactions, so this rung
//!    normally guarantees one transaction of forward progress.
//! 3. **Non-speculative sequential fallback** ([`RecoveryRung::NonSpec`]) —
//!    if even the serialized rung misspeculates (possible under injected
//!    faults), execute the rest of the loop as plain sequential code with no
//!    transactions at all. Fault injection only targets speculative
//!    accesses, so this rung is immune by construction and the run always
//!    terminates.
//!
//! Exceeding `MachineConfig::max_recoveries` reports
//! [`SimError::Livelock`]; `SimError::BadProgram` is reserved for genuine
//! bugs (e.g. misspeculation *during* non-speculative execution).

use hmtx_core::{faults, AccessKind, AccessRequest, AccessResponse, MisspecCause};
use hmtx_machine::{Machine, MachineStats, RunEvent, ThreadContext};
use hmtx_types::{CoreId, Cycle, MachineConfig, SimError, ThreadId, Vid};

use crate::body::LoopBody;
use crate::emit::{build_paradigm, Paradigm};
use crate::env::{rcb, LoopEnv};

/// Attempts to rewrite the runtime control block before giving up; each
/// failed attempt drains all speculative state first, so in a correct
/// protocol the second attempt already cannot conflict.
const RCB_RESYNC_ATTEMPTS: u32 = 8;

/// Stream tag for the deterministic VID-space squeeze (chaos testing).
const VID_SQUEEZE_STREAM: u64 = 0x5649_4453_5155_455A;

/// Stream tag for the deterministic cache-capacity squeeze (chaos testing).
const CACHE_SQUEEZE_STREAM: u64 = 0x4341_4348_4553_515A;

/// Sentinel VID the begin guard's VID-exhaustion watchdog aborts with
/// (HyTM mode). Real VIDs are at most `2^12 - 1 = 4095` (`vid_bits` is
/// validated to `2..=12`), so the sentinel can never collide with one.
/// Defined in `hmtx-types` so the static analyzer recognizes the idiom.
pub use hmtx_types::VID_EXHAUSTION_SENTINEL;

/// Which rung of the recovery ladder a recovery used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Parallel re-dispatch of the paradigm from the first uncommitted
    /// transaction.
    Parallel,
    /// Serialized re-execution of the first uncommitted transaction alone,
    /// then parallel re-dispatch from the next one.
    SingleTx,
    /// Fully non-speculative sequential execution of the remaining
    /// iterations (terminal: the run finishes on this rung).
    NonSpec,
    /// HyTM demotion: the stuck transaction (or a whole storming group) ran
    /// on the SMTX-style instrumented software slow path, then the fast
    /// path resumed (non-terminal, unlike [`RecoveryRung::NonSpec`]).
    SoftwareSlowPath,
}

impl RecoveryRung {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::Parallel => "parallel",
            RecoveryRung::SingleTx => "single-tx",
            RecoveryRung::NonSpec => "non-spec",
            RecoveryRung::SoftwareSlowPath => "software-slow-path",
        }
    }
}

/// Why a HyTM transaction was demoted to the software slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionCause {
    /// The read or write set outgrew the configured fast-path bounds (or
    /// the cache hierarchy itself): `SpecOverflow`.
    Capacity,
    /// The begin guard's watchdog expired waiting for VID space (§4.6
    /// reset starvation under a squeezed VID range).
    VidExhaustion,
    /// `K` consecutive aborts of the same transaction by genuine conflicts.
    AbortStorm,
    /// A fault-planner injected conflict (chaos testing).
    InjectedFault,
}

impl DemotionCause {
    /// Short display name used in reports and the recovery summary.
    pub fn name(self) -> &'static str {
        match self {
            DemotionCause::Capacity => "capacity",
            DemotionCause::VidExhaustion => "vid-exhaustion",
            DemotionCause::AbortStorm => "abort-storm",
            DemotionCause::InjectedFault => "injected-fault",
        }
    }

    /// All causes, in the order reports tabulate them.
    pub const ALL: [DemotionCause; 4] = [
        DemotionCause::Capacity,
        DemotionCause::VidExhaustion,
        DemotionCause::AbortStorm,
        DemotionCause::InjectedFault,
    ];

    /// Classifies an abort as an *immediate* demotion cause, if it is one.
    /// Conflict-class aborts return `None` here; they only demote once `K`
    /// consecutive failures of one transaction make them an
    /// [`DemotionCause::AbortStorm`].
    pub fn immediate(cause: &MisspecCause) -> Option<Self> {
        match cause {
            MisspecCause::SpecOverflow { .. } => Some(DemotionCause::Capacity),
            MisspecCause::ExplicitAbort { vid } if vid.0 == VID_EXHAUSTION_SENTINEL => {
                Some(DemotionCause::VidExhaustion)
            }
            MisspecCause::InjectedConflict { .. } => Some(DemotionCause::InjectedFault),
            _ => None,
        }
    }
}

/// One recovery, as recorded in [`RunReport::recovery_log`].
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// The architectural cause of the abort.
    pub cause: MisspecCause,
    /// Cycle at which the misspeculation was detected.
    pub cycle: Cycle,
    /// How many times the same first-uncommitted transaction had failed when
    /// this recovery ran (1 = first failure at this point).
    pub depth: u64,
    /// The ladder rung the runtime chose.
    pub rung: RecoveryRung,
    /// HyTM only: why this recovery demoted to the software slow path
    /// (`None` for fast-path retries and every non-HyTM run).
    pub demotion: Option<DemotionCause>,
}

/// Fast/slow-path mix of one HyTM run (`None` on every other paradigm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HytmMix {
    /// Transactions committed on the HMTX fast path.
    pub fast_commits: u64,
    /// Transactions committed on the software slow path.
    pub slow_commits: u64,
    /// Demotions by cause, indexed as [`DemotionCause::ALL`].
    pub demotions_by_cause: [u64; 4],
    /// Fast-path re-dispatches that did *not* demote (backoff retries).
    pub fast_retries: u64,
    /// Total stall cycles charged by the exponential backoff.
    pub backoff_cycles: u64,
    /// Times the storm breaker serialized a whole group on the slow path.
    pub storm_serializations: u64,
}

impl HytmMix {
    /// Total demotions across all causes.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions_by_cause.iter().sum()
    }
}

/// Result of running a parallelized loop to completion.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Paradigm that ran.
    pub paradigm: Paradigm,
    /// Completion time in cycles.
    pub cycles: Cycle,
    /// Retired instructions.
    pub instructions: u64,
    /// Times the machine aborted and the runtime re-dispatched.
    pub recoveries: u64,
    /// Causes of each recovery (the run fails with [`SimError::Livelock`]
    /// after `MachineConfig::max_recoveries` recoveries).
    pub recovery_causes: Vec<MisspecCause>,
    /// Every recovery's cause, depth, and chosen ladder rung, in order.
    pub recovery_log: Vec<RecoveryRecord>,
    /// Committed program output.
    pub outputs: Vec<u64>,
    /// Machine statistics snapshot.
    pub machine_stats: MachineStats,
    /// HyTM fast/slow-path mix (`None` unless the `hytm` mode ran).
    pub hytm: Option<HytmMix>,
}

impl RunReport {
    /// Hot-loop speedup of this run over a baseline cycle count.
    #[must_use]
    pub fn speedup_over(&self, baseline_cycles: Cycle) -> f64 {
        speedup(baseline_cycles, self.cycles)
    }

    /// Retired instructions per cycle across all cores.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// Speedup of `cycles` relative to `baseline_cycles` (values above 1.0 mean
/// faster than the baseline). The single definition every experiment's
/// speedup column goes through.
#[must_use]
pub fn speedup(baseline_cycles: Cycle, cycles: Cycle) -> f64 {
    baseline_cycles as f64 / cycles.max(1) as f64
}

/// Applies the deterministic pre-run squeezes of the fault configuration:
/// a shrunk usable VID space (forcing §4.6 overflow/reset traffic) and
/// halved L1 ways/capacity (forcing §5.4 overflow traffic). Both are pure
/// functions of the fault seed. Returns the (possibly modified) machine
/// configuration and the usable VID ceiling for the loop environment.
pub fn squeezed_config(cfg: &MachineConfig) -> (MachineConfig, u16) {
    let mut run_cfg = cfg.clone();
    let mut max_vid = cfg.hmtx.max_vid().0;
    if let Some(f) = cfg.faults {
        if f.vid_squeeze && max_vid > 4 {
            let span = (max_vid - 4) as u64 + 1;
            max_vid = 4 + faults::derive(f.seed, VID_SQUEEZE_STREAM, span) as u16;
        }
        if f.cache_squeeze {
            // One or two halvings of the L1, seed-chosen. Ways and size
            // shrink together so the set count (and its power-of-two
            // validation) is preserved.
            let halvings = 1 + faults::derive(f.seed, CACHE_SQUEEZE_STREAM, 2);
            for _ in 0..halvings {
                if run_cfg.l1.ways > 1 {
                    run_cfg.l1.ways /= 2;
                    run_cfg.l1.size_bytes /= 2;
                }
            }
        }
    }
    (run_cfg, max_vid)
}

/// Runs `body` under `paradigm` on a fresh machine built from `cfg`.
///
/// Returns the machine (for memory verification and statistics) together
/// with the report.
///
/// # Errors
///
/// Returns [`SimError`] for guest-program bugs, when the instruction budget
/// is exceeded, or — as [`SimError::Livelock`] — when the run recovers
/// `cfg.max_recoveries` times without completing.
pub fn run_loop(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    cfg: &MachineConfig,
    budget: u64,
) -> Result<(Machine, RunReport), SimError> {
    let workers = match paradigm {
        Paradigm::Sequential => 1,
        Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
        Paradigm::Dswp => 1,
        Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
    };
    let (run_cfg, max_vid) = squeezed_config(cfg);
    let env = LoopEnv::new(max_vid, workers).with_pipeline_window(run_cfg.pipeline_window);
    let mut machine = Machine::new(run_cfg);
    body.build_image(&mut machine, &env);

    dispatch(paradigm, body, &env, &mut machine, 1)?;

    let mut recoveries = 0u64;
    let mut recovery_causes = Vec::new();
    let mut recovery_log: Vec<RecoveryRecord> = Vec::new();
    let mut stuck_n0 = 0u64;
    let mut depth = 0u64;
    let mut nonspec = false;
    let mut spent = 0u64;
    loop {
        let before = machine.stats().instructions;
        let event = machine.run(budget.saturating_sub(spent))?;
        spent += machine.stats().instructions - before;
        match event {
            RunEvent::AllHalted => break,
            RunEvent::BudgetExhausted => {
                return Err(SimError::InstructionBudgetExceeded { budget });
            }
            RunEvent::Misspeculation { cause, cycle } => {
                recoveries += 1;
                if recoveries > cfg.max_recoveries {
                    return Err(SimError::Livelock {
                        recoveries,
                        last_cause: format!("{cause:?}"),
                    });
                }
                if nonspec {
                    // Fault injection never targets non-speculative
                    // execution, so this is a genuine simulator/program bug.
                    return Err(SimError::BadProgram(format!(
                        "misspeculation during non-speculative fallback: {cause:?}"
                    )));
                }
                // The machine already aborted all speculative state; the
                // hierarchy is quiescent, so fault schedules can be
                // validated against the protocol invariants here.
                chaos_invariant_check(cfg, &machine)?;

                let committed = machine.mem().stats().commits;
                let n0 = committed + 1;
                if n0 == stuck_n0 {
                    depth += 1;
                } else {
                    stuck_n0 = n0;
                    depth = 1;
                }
                let rung = recover(
                    paradigm,
                    body,
                    &env,
                    &mut machine,
                    cycle,
                    n0,
                    depth,
                    cfg.recovery_parallel_retries,
                )?;
                if rung == RecoveryRung::NonSpec {
                    nonspec = true;
                }
                recovery_causes.push(cause);
                recovery_log.push(RecoveryRecord {
                    cause,
                    cycle,
                    depth,
                    rung,
                    demotion: None,
                });
            }
        }
    }

    chaos_invariant_check(cfg, &machine)?;
    if let Some(expected) = body.expected_outputs() {
        let got = machine.committed_output().len() as u64;
        debug_assert_eq!(expected, got, "workload output count mismatch");
    }

    let report = RunReport {
        paradigm,
        cycles: machine.cycles(),
        instructions: machine.stats().instructions,
        recoveries,
        recovery_causes,
        recovery_log,
        outputs: machine.committed_output().to_vec(),
        machine_stats: *machine.stats(),
        hytm: None,
    };
    Ok((machine, report))
}

/// When the fault configuration asks for it, scan the hierarchy for
/// protocol invariant violations (quiescent points only).
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] naming the first violation found.
pub fn chaos_invariant_check(cfg: &MachineConfig, machine: &Machine) -> Result<(), SimError> {
    if !cfg.faults.is_some_and(|f| f.check_invariants) {
        return Ok(());
    }
    let violations = machine.mem().check_invariants();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(SimError::BadProgram(format!(
            "protocol invariant violated after recovery: {:?}",
            violations[0]
        )))
    }
}

/// Loads the generated thread programs onto their cores.
fn dispatch(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    machine: &mut Machine,
    n0: u64,
) -> Result<(), SimError> {
    let generated = build_paradigm(paradigm, body, env, n0)?;
    for (i, t) in generated.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }
    Ok(())
}

/// Re-synchronizes the runtime control block with the true commit count via
/// plain non-speculative stores, charging normal memory latency. A store
/// that hits lingering speculative marks retries after draining all
/// speculative state (a conflict here means some cache still holds
/// speculative versions — exactly what an abort flush removes).
pub fn resync_rcb(
    machine: &mut Machine,
    env: &LoopEnv,
    committed: u64,
    cycle: Cycle,
) -> Result<(), SimError> {
    let mut attempts = 0u32;
    'resync: loop {
        let now = machine.cycles().max(cycle);
        for (offset, value) in [(rcb::LAST_COMMITTED, committed), (rcb::VID_BASE, committed)] {
            let req = AccessRequest {
                core: CoreId(0),
                addr: env.rcb.offset(offset),
                kind: AccessKind::Write(value),
                vid: Vid::NON_SPECULATIVE,
                wrong_path: false,
            };
            match machine.mem_mut().access(now, &req)? {
                AccessResponse::Done { .. } => {}
                AccessResponse::Misspec { .. } => {
                    attempts += 1;
                    if attempts >= RCB_RESYNC_ATTEMPTS {
                        return Err(SimError::BadProgram(
                            "runtime control block still conflicting after draining \
                             speculative state"
                                .into(),
                        ));
                    }
                    machine.machine_abort(now);
                    continue 'resync;
                }
            }
        }
        return Ok(());
    }
}

/// Runs transaction `n0` alone (both stages inline, full begin/commit
/// protocol). Returns `None` on success or the misspeculation that stopped
/// it; either way every core is left unloaded.
pub(crate) fn run_single_tx(
    machine: &mut Machine,
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<Option<(MisspecCause, Cycle)>, SimError> {
    for core in 0..machine.config().num_cores {
        machine.unload_thread(core);
    }
    let single = crate::emit::build_single_tx(body, env, n0)?;
    for (i, t) in single.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }
    let outcome = match machine.run(u64::MAX)? {
        RunEvent::AllHalted => None,
        RunEvent::Misspeculation { cause, cycle } => Some((cause, cycle)),
        RunEvent::BudgetExhausted => unreachable!("unlimited budget"),
    };
    for core in 0..machine.config().num_cores {
        machine.unload_thread(core);
    }
    Ok(outcome)
}

/// Recovery after an abort: the machine has already flushed all speculative
/// state and queues. Free the VID space, re-synchronize the runtime control
/// block, and climb the recovery ladder (see the module docs): parallel
/// re-dispatch while `depth` is within the retry budget, then serialized
/// re-execution of the stuck transaction, then — if even that misspeculates
/// — fully non-speculative sequential execution of the remaining loop.
#[allow(clippy::too_many_arguments)]
fn recover(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    machine: &mut Machine,
    cycle: Cycle,
    n0: u64,
    depth: u64,
    parallel_retries: u64,
) -> Result<RecoveryRung, SimError> {
    // Free the VID space: everything uncommitted was just aborted, so every
    // outstanding VID is either committed or gone.
    if machine.mem().last_committed() > Vid::NON_SPECULATIVE {
        machine.vid_reset();
    }
    resync_rcb(machine, env, n0 - 1, cycle)?;
    for core in 0..machine.config().num_cores {
        machine.unload_thread(core);
    }

    // Rung 1: optimistic parallel re-dispatch (also used when every
    // iteration already committed and only the epilogue needs to re-run).
    if n0 > body.iterations() || depth <= parallel_retries {
        dispatch(paradigm, body, env, machine, n0)?;
        return Ok(RecoveryRung::Parallel);
    }

    // Rung 2: serialized re-execution of the stuck transaction.
    match run_single_tx(machine, body, env, n0)? {
        None => {
            dispatch(paradigm, body, env, machine, n0 + 1)?;
            Ok(RecoveryRung::SingleTx)
        }
        Some((_cause, misspec_cycle)) => {
            // Rung 3: even a lone transaction misspeculated (an injected
            // fault, or cache pressure no re-execution can relieve). Finish
            // the loop fully non-speculatively; injection never targets
            // non-speculative accesses, so this always terminates.
            let committed = machine.mem().stats().commits;
            if machine.mem().last_committed() > Vid::NON_SPECULATIVE {
                machine.vid_reset();
            }
            resync_rcb(machine, env, committed, misspec_cycle)?;
            let seq = crate::emit::build_sequential(body, env, committed + 1)?;
            for (i, t) in seq.threads.into_iter().enumerate() {
                machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
            }
            Ok(RecoveryRung::NonSpec)
        }
    }
}
