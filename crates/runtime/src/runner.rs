//! The run harness: dispatches a parallelized loop onto a machine, handles
//! misspeculation recovery, and reports timing/statistics.

use hmtx_core::{AccessKind, AccessRequest, AccessResponse, MisspecCause};
use hmtx_machine::{Machine, MachineStats, RunEvent, ThreadContext};
use hmtx_types::{CoreId, Cycle, MachineConfig, SimError, ThreadId, Vid};

use crate::body::LoopBody;
use crate::emit::{build_paradigm, Paradigm};
use crate::env::{rcb, LoopEnv};

/// Safety valve: a run that recovers this many times is considered livelocked.
const MAX_RECOVERIES: u64 = 1_000;

/// Result of running a parallelized loop to completion.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Paradigm that ran.
    pub paradigm: Paradigm,
    /// Completion time in cycles.
    pub cycles: Cycle,
    /// Retired instructions.
    pub instructions: u64,
    /// Times the machine aborted and the runtime re-dispatched.
    pub recoveries: u64,
    /// Causes of each recovery (the runtime aborts after 1,000 recoveries).
    pub recovery_causes: Vec<MisspecCause>,
    /// Committed program output.
    pub outputs: Vec<u64>,
    /// Machine statistics snapshot.
    pub machine_stats: MachineStats,
}

impl RunReport {
    /// Hot-loop speedup of this run over a baseline cycle count.
    #[must_use]
    pub fn speedup_over(&self, baseline_cycles: Cycle) -> f64 {
        speedup(baseline_cycles, self.cycles)
    }

    /// Retired instructions per cycle across all cores.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// Speedup of `cycles` relative to `baseline_cycles` (values above 1.0 mean
/// faster than the baseline). The single definition every experiment's
/// speedup column goes through.
#[must_use]
pub fn speedup(baseline_cycles: Cycle, cycles: Cycle) -> f64 {
    baseline_cycles as f64 / cycles.max(1) as f64
}

/// Runs `body` under `paradigm` on a fresh machine built from `cfg`.
///
/// Returns the machine (for memory verification and statistics) together
/// with the report.
///
/// # Errors
///
/// Returns [`SimError`] for guest-program bugs or when the instruction
/// budget/recovery limit is exceeded.
pub fn run_loop(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    cfg: &MachineConfig,
    budget: u64,
) -> Result<(Machine, RunReport), SimError> {
    let workers = match paradigm {
        Paradigm::Sequential => 1,
        Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
        Paradigm::Dswp => 1,
        Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
    };
    let env = LoopEnv::new(cfg.hmtx.max_vid().0, workers).with_pipeline_window(cfg.pipeline_window);
    let mut machine = Machine::new(cfg.clone());
    body.build_image(&mut machine, &env);

    dispatch(paradigm, body, &env, &mut machine, 1)?;

    let mut recoveries = 0;
    let mut recovery_causes = Vec::new();
    let mut spent = 0u64;
    loop {
        let before = machine.stats().instructions;
        let event = machine.run(budget.saturating_sub(spent))?;
        spent += machine.stats().instructions - before;
        match event {
            RunEvent::AllHalted => break,
            RunEvent::BudgetExhausted => {
                return Err(SimError::InstructionBudgetExceeded { budget });
            }
            RunEvent::Misspeculation { cause, cycle } => {
                recoveries += 1;
                if recoveries > MAX_RECOVERIES {
                    return Err(SimError::BadProgram(format!(
                        "{} recoveries without progress (last cause: {cause:?})",
                        MAX_RECOVERIES
                    )));
                }
                recovery_causes.push(cause);
                recover(paradigm, body, &env, &mut machine, cycle)?;
            }
        }
    }

    if let Some(expected) = body.expected_outputs() {
        let got = machine.committed_output().len() as u64;
        debug_assert_eq!(expected, got, "workload output count mismatch");
    }

    let report = RunReport {
        paradigm,
        cycles: machine.cycles(),
        instructions: machine.stats().instructions,
        recoveries,
        recovery_causes,
        outputs: machine.committed_output().to_vec(),
        machine_stats: *machine.stats(),
    };
    Ok((machine, report))
}

/// Loads the generated thread programs onto their cores.
fn dispatch(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    machine: &mut Machine,
    n0: u64,
) -> Result<(), SimError> {
    let generated = build_paradigm(paradigm, body, env, n0)?;
    for (i, t) in generated.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }
    Ok(())
}

/// Recovery after an abort: the machine has already flushed all speculative
/// state and queues. Re-synchronize the runtime control block with the true
/// commit count and restart every thread from the first uncommitted
/// transaction (the paper's recovery-code path, hosted here).
fn recover(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    machine: &mut Machine,
    cycle: Cycle,
) -> Result<(), SimError> {
    // Total commits is monotonic across VID resets; every transaction
    // 1..=commits committed exactly once.
    let committed = machine.mem().stats().commits;
    let n0 = committed + 1;

    // Free the VID space: everything uncommitted was just aborted, so every
    // outstanding VID is either committed or gone.
    if machine.mem().last_committed() > Vid::NON_SPECULATIVE {
        machine.vid_reset();
    }

    // Fix the runtime control block through the coherence protocol (plain
    // non-speculative stores), charging normal memory latency.
    let now = machine.cycles().max(cycle);
    for (offset, value) in [(rcb::LAST_COMMITTED, committed), (rcb::VID_BASE, committed)] {
        let req = AccessRequest {
            core: CoreId(0),
            addr: env.rcb.offset(offset),
            kind: AccessKind::Write(value),
            vid: Vid::NON_SPECULATIVE,
            wrong_path: false,
        };
        match machine.mem_mut().access(now, &req)? {
            AccessResponse::Done { .. } => {}
            AccessResponse::Misspec { cause, .. } => {
                return Err(SimError::BadProgram(format!(
                    "runtime control block conflicted during recovery: {cause:?}"
                )));
            }
        }
    }

    // Guarantee forward progress: re-execute the first uncommitted
    // transaction alone (a true cross-iteration conflict would otherwise
    // recur forever), then go parallel again from n0 + 1.
    for core in 0..machine.config().num_cores {
        machine.unload_thread(core);
    }
    if n0 <= body.iterations() {
        let single = crate::emit::build_single_tx(body, env, n0)?;
        for (i, t) in single.threads.into_iter().enumerate() {
            machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
        }
        match machine.run(u64::MAX)? {
            RunEvent::AllHalted => {}
            RunEvent::Misspeculation { cause, .. } => {
                return Err(SimError::BadProgram(format!(
                    "transaction {n0} misspeculated while running alone: {cause:?}"
                )));
            }
            RunEvent::BudgetExhausted => unreachable!("unlimited budget"),
        }
        for core in 0..machine.config().num_cores {
            machine.unload_thread(core);
        }
        return dispatch(paradigm, body, env, machine, n0 + 1);
    }
    dispatch(paradigm, body, env, machine, n0)
}
