//! The interface a parallelizable loop exposes to the runtime.

use hmtx_isa::ProgramBuilder;
use hmtx_machine::Machine;

use crate::env::LoopEnv;

/// A loop that the runtime can parallelize under any paradigm.
///
/// The contract (register conventions in [`crate::env::regs`]):
///
/// * `emit_stage1` generates the *sequential pipeline stage* of one
///   iteration. It runs inside the iteration's transaction. It receives the
///   1-based iteration number in `N` and must leave the iteration's work
///   item in `ITEM`. All loop-carried state must live in guest memory at
///   [`LoopEnv::state_slot`] addresses (read at the start, written back
///   speculatively), so that recovery can restart from committed memory and
///   so DOACROSS workers can pick the state up through versioned memory.
///   It may set `STOP` nonzero to make this the final iteration.
/// * `emit_stage2` generates the *parallel stage*: it receives the work item
///   in `ITEM` (the runtime routes it through the speculative
///   `produced_slot` under HMTX, or through queues under SMTX) and performs
///   the iteration's work on shared data.
/// * Bodies may clobber registers `r0..r13`; `SPEC_LOADS`/`SPEC_STORES`
///   (`r14`/`r15`) should be set to the iteration's validated access counts
///   when the SMTX baseline will run this workload.
pub trait LoopBody {
    /// Upper bound on iterations (the runtime stops at `iterations` even if
    /// `STOP` was never set).
    fn iterations(&self) -> u64;

    /// Writes the initial guest memory image (data structures, inputs) and
    /// the initial values of the state slots.
    fn build_image(&self, machine: &mut Machine, env: &LoopEnv);

    /// Emits the sequential stage of one iteration.
    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv);

    /// Emits the parallel stage of one iteration.
    fn emit_stage2(&self, b: &mut ProgramBuilder, env: &LoopEnv);

    /// Expected output length (sanity checking; `None` to skip).
    fn expected_outputs(&self) -> Option<u64> {
        None
    }

    /// `(loads, stores)` a hand-minimized SMTX port would validate per
    /// iteration (the expert-programmer minimal read/write set of Figure 2).
    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}
