//! Program generation for each parallelization paradigm (Figure 1):
//! Sequential, DOALL, DOACROSS, DSWP, and PS-DSWP, all driving the same
//! [`LoopBody`] through the HMTX instructions of §3.
//!
//! The orchestration protocol generated around the workload body:
//!
//! * The VID of global transaction `n` (1-based) is `n - vid_base`, where
//!   `vid_base` lives in the runtime control block and records the
//!   transaction number at the last VID reset.
//! * **Begin guard** — a transaction may begin only when
//!   `n - vid_base <= max_vid`; otherwise the thread spins (this is the
//!   §4.6 pipeline stall while the VID space drains).
//! * **Commit protocol** — commits happen in global order: spin until
//!   `last_committed == n - 1`, `commitMTX(vid)`, and if `vid == max_vid`
//!   issue the VID reset and advance `vid_base` before publishing
//!   `last_committed = n`.
//! * Stage 1 communicates each work item to stage 2 with a single
//!   speculative store to `produced_slot` (the paper's `producedNode`,
//!   §3.2); only the transaction *number* travels through a hardware queue.

use std::sync::Arc;

use hmtx_isa::{Cond, Label, Program, ProgramBuilder};
use hmtx_types::{QueueId, SimError};

use crate::body::LoopBody;
use crate::env::{rcb, regs, LoopEnv};

/// The parallel execution paradigms of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Single-threaded, no transactions (the speedup baseline).
    Sequential,
    /// Independent iterations, one transaction each, round-robin across
    /// workers.
    Doall,
    /// Each worker runs whole iterations; the loop-carried state flows
    /// through versioned memory, gated by a token ring.
    Doacross,
    /// Two-stage pipeline: one sequential stage, one worker.
    Dswp,
    /// Parallel-stage DSWP: one sequential stage, many workers.
    PsDswp,
}

impl Paradigm {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Paradigm::Sequential => "Sequential",
            Paradigm::Doall => "DOALL",
            Paradigm::Doacross => "DOACROSS",
            Paradigm::Dswp => "DSWP",
            Paradigm::PsDswp => "PS-DSWP",
        }
    }
}

/// A generated parallelization: one program per hardware thread, with the
/// core each should be loaded on.
#[derive(Debug, Clone)]
pub struct GeneratedThreads {
    /// `(core, initial N register value, first-iteration flag, program)`.
    pub threads: Vec<GeneratedThread>,
}

/// One generated guest thread.
#[derive(Debug, Clone)]
pub struct GeneratedThread {
    /// Core to load the thread on.
    pub core: usize,
    /// The program.
    pub program: Arc<Program>,
}

/// Emits the standard prologue: runtime constant registers.
fn emit_prologue(b: &mut ProgramBuilder, env: &LoopEnv, n0: u64) {
    b.li(regs::RCB, env.rcb.0 as i64);
    b.li(regs::MAX_VID, env.max_vid as i64);
    b.li(regs::SLOT, env.produced_slot.0 as i64);
    b.li(regs::N, n0 as i64);
    b.li(regs::STOP, 0);
}

/// Emits the begin guard (spin until `n - vid_base <= max_vid`), leaving the
/// VID in [`regs::VID`], then `beginMTX(vid)`.
fn emit_begin_guarded(b: &mut ProgramBuilder, env: &LoopEnv) -> Result<(), SimError> {
    let spin = b.new_label();
    let window = env.pipeline_window.min(env.max_vid as u64);
    if let Some(spins) = env.vid_watchdog {
        // HyTM watchdog budget, reset on every guard entry. Only VID-space
        // spins consume it — the pipeline-window spin always drains on its
        // own as predecessors commit.
        b.li(regs::BOUND, spins as i64);
    }
    b.bind(spin)?;
    // Depth bound: at most `pipeline_window` live transactions, so the live
    // versions of any hot line fit in the hierarchy's associativity.
    b.load(regs::T0, regs::RCB, rcb::LAST_COMMITTED);
    b.sub(regs::T1, regs::N, regs::T0);
    b.branch_imm(Cond::GeU, regs::T1, window as i64 + 1, spin);
    // VID-space bound (§4.6): wait for a reset once the VIDs are exhausted.
    b.load(regs::T0, regs::RCB, rcb::VID_BASE);
    b.sub(regs::VID, regs::N, regs::T0);
    match env.vid_watchdog {
        None => {
            b.branch_imm(Cond::GeU, regs::VID, env.max_vid as i64 + 1, spin);
        }
        Some(_) => {
            // Bounded spin: when the budget runs dry the thread aborts with
            // the exhaustion sentinel VID, which the HyTM runtime classifies
            // as `DemotionCause::VidExhaustion` and routes to the software
            // slow path instead of waiting forever for a reset.
            let proceed = b.new_label();
            b.branch_imm(Cond::LtU, regs::VID, env.max_vid as i64 + 1, proceed);
            b.addi(regs::BOUND, regs::BOUND, -1);
            b.branch_imm(Cond::Ne, regs::BOUND, 0, spin);
            b.li(regs::T0, crate::runner::VID_EXHAUSTION_SENTINEL as i64);
            b.abort_mtx(regs::T0);
            b.bind(proceed)?;
        }
    }
    b.begin_mtx(regs::VID);
    Ok(())
}

/// Emits just the VID computation and `beginMTX` (no spin): used by pipeline
/// workers, which only receive transaction numbers that stage 1 already
/// guarded.
fn emit_begin_unguarded(b: &mut ProgramBuilder) {
    b.load(regs::T0, regs::RCB, rcb::VID_BASE);
    b.sub(regs::VID, regs::N, regs::T0);
    b.begin_mtx(regs::VID);
}

/// Emits the ordered-commit protocol (assumes the thread left the
/// transaction with `beginMTX(0)` already, `VID`/`N` still set).
fn emit_commit_protocol(b: &mut ProgramBuilder, env: &LoopEnv) -> Result<(), SimError> {
    let spin = b.new_label();
    let no_reset = b.new_label();
    b.bind(spin)?;
    b.load(regs::T0, regs::RCB, rcb::LAST_COMMITTED);
    b.sub(regs::T1, regs::N, 1);
    b.branch(Cond::Ne, regs::T0, regs::T1, spin);
    b.commit_mtx(regs::VID);
    b.branch_imm(Cond::Ne, regs::VID, env.max_vid as i64, no_reset);
    b.vid_reset();
    b.store(regs::N, regs::RCB, rcb::VID_BASE);
    b.bind(no_reset)?;
    b.store(regs::N, regs::RCB, rcb::LAST_COMMITTED);
    Ok(())
}

/// Emits `beginMTX(0)` (leave speculative execution without committing).
fn emit_leave_tx(b: &mut ProgramBuilder) {
    b.li(regs::T0, 0);
    b.begin_mtx(regs::T0);
}

/// Builds the single-threaded non-transactional baseline, starting at
/// iteration `n0` (1 for a whole-loop run). The runner's last recovery rung
/// uses `n0 > 1` to finish a partially committed loop fully
/// non-speculatively: iterations `1..n0` already committed, so their state
/// is ordinary committed memory the sequential program reads directly.
pub fn build_sequential(
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    let mut b = ProgramBuilder::new();
    let head = b.new_label();
    let done = b.new_label();
    emit_prologue(&mut b, env, n0);
    b.bind(head)?;
    b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, done);
    b.li(regs::STOP, 0);
    body.emit_stage1(&mut b, env);
    body.emit_stage2(&mut b, env);
    b.branch_imm(Cond::Ne, regs::STOP, 0, done);
    b.addi(regs::N, regs::N, 1);
    b.jump(head);
    b.bind(done)?;
    b.halt();
    Ok(GeneratedThreads {
        threads: vec![GeneratedThread {
            core: 0,
            program: Arc::new(b.build()?),
        }],
    })
}

/// Builds the DOALL parallelization: `workers` threads, each owning the
/// iterations congruent to its index, every iteration one transaction.
pub fn build_doall(
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    let w_count = env.workers;
    let mut threads = Vec::new();
    for w in 0..w_count {
        // First n >= n0 with (n - 1) % w_count == w's lane; lanes are
        // assigned relative to n0 so recovery rebalances cleanly.
        let n_start = n0 + w as u64;
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        emit_prologue(&mut b, env, n_start);
        b.li(regs::STRIDE, w_count as i64);
        b.bind(head)?;
        b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, done);
        emit_begin_guarded(&mut b, env)?;
        b.li(regs::STOP, 0);
        body.emit_stage1(&mut b, env);
        body.emit_stage2(&mut b, env);
        emit_leave_tx(&mut b);
        emit_commit_protocol(&mut b, env)?;
        b.add(regs::N, regs::N, regs::STRIDE);
        b.jump(head);
        b.bind(done)?;
        b.halt();
        threads.push(GeneratedThread {
            core: w,
            program: Arc::new(b.build()?),
        });
    }
    Ok(GeneratedThreads { threads })
}

/// Builds the DOACROSS parallelization: whole iterations per worker, with a
/// token ring enforcing that iteration `n` only starts once `n - 1` has
/// performed its loop-carried writes (which then flow through versioned
/// memory).
pub fn build_doacross(
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    let w_count = env.workers;
    let mut threads = Vec::new();
    for w in 0..w_count {
        let n_start = n0 + w as u64;
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        let skiptok = b.new_label();
        emit_prologue(&mut b, env, n_start);
        b.li(regs::STRIDE, w_count as i64);
        b.li(regs::FIRST, if w == 0 { 1 } else { 0 });
        b.bind(head)?;
        b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, done);
        b.branch_imm(Cond::Ne, regs::FIRST, 0, skiptok);
        b.consume(regs::T0, QueueId(w));
        b.bind(skiptok)?;
        b.li(regs::FIRST, 0);
        emit_begin_guarded(&mut b, env)?;
        b.li(regs::STOP, 0);
        body.emit_stage1(&mut b, env);
        body.emit_stage2(&mut b, env);
        // Pass the baton: iteration n+1 (on the next worker) may now read
        // this iteration's uncommitted state through versioned memory.
        b.produce(QueueId((w + 1) % w_count), regs::N);
        emit_leave_tx(&mut b);
        emit_commit_protocol(&mut b, env)?;
        b.add(regs::N, regs::N, regs::STRIDE);
        b.jump(head);
        b.bind(done)?;
        b.halt();
        threads.push(GeneratedThread {
            core: w,
            program: Arc::new(b.build()?),
        });
    }
    Ok(GeneratedThreads { threads })
}

/// Builds a (PS-)DSWP parallelization: one sequential stage-1 thread on core
/// 0 and `env.workers` stage-2 workers on cores `1..`.
pub fn build_psdswp(
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    let w_count = env.workers;
    let mut threads = Vec::new();

    // ---- stage 1 ----
    {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let finish = b.new_label();
        let cont = b.new_label();
        let route: Vec<Label> = (0..w_count).map(|_| b.new_label()).collect();
        emit_prologue(&mut b, env, n0);
        b.bind(head)?;
        b.branch_imm(Cond::GeU, regs::N, body.iterations() as i64 + 1, finish);
        emit_begin_guarded(&mut b, env)?;
        b.li(regs::STOP, 0);
        body.emit_stage1(&mut b, env);
        // The paper's producedNode idiom: one speculative store publishes
        // the item; the worker's load inside the same MTX finds this VID's
        // version (§3.2).
        b.store(regs::ITEM, regs::SLOT, 0);
        emit_leave_tx(&mut b);
        // Route the transaction number to worker (n-1) % W.
        b.sub(regs::T0, regs::N, 1);
        b.rem(regs::T0, regs::T0, w_count as i64);
        for (w, label) in route.iter().enumerate() {
            b.branch_imm(Cond::Eq, regs::T0, w as i64, *label);
        }
        for (w, label) in route.iter().enumerate() {
            b.bind(*label)?;
            b.produce(QueueId(w), regs::N);
            b.jump(cont);
        }
        b.bind(cont)?;
        b.branch_imm(Cond::Ne, regs::STOP, 0, finish);
        b.addi(regs::N, regs::N, 1);
        b.jump(head);
        b.bind(finish)?;
        b.li(regs::T0, 0);
        for w in 0..w_count {
            b.produce(QueueId(w), regs::T0);
        }
        b.halt();
        threads.push(GeneratedThread {
            core: 0,
            program: Arc::new(b.build()?),
        });
    }

    // ---- stage 2 workers ----
    for w in 0..w_count {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        emit_prologue(&mut b, env, 0);
        b.bind(head)?;
        b.consume(regs::N, QueueId(w));
        b.branch_imm(Cond::Eq, regs::N, 0, done);
        emit_begin_unguarded(&mut b);
        b.load(regs::ITEM, regs::SLOT, 0);
        body.emit_stage2(&mut b, env);
        emit_leave_tx(&mut b);
        emit_commit_protocol(&mut b, env)?;
        b.jump(head);
        b.bind(done)?;
        b.halt();
        threads.push(GeneratedThread {
            core: 1 + w,
            program: Arc::new(b.build()?),
        });
    }
    Ok(GeneratedThreads { threads })
}

/// Builds a program that executes exactly transaction `n` (both stages
/// inline) with the full begin/commit protocol, then halts. The runner uses
/// this after an abort to guarantee forward progress: the first uncommitted
/// transaction re-executes alone, so a true inter-iteration conflict cannot
/// repeat indefinitely.
pub fn build_single_tx(
    body: &dyn LoopBody,
    env: &LoopEnv,
    n: u64,
) -> Result<GeneratedThreads, SimError> {
    let mut b = ProgramBuilder::new();
    emit_prologue(&mut b, env, n);
    emit_begin_guarded(&mut b, env)?;
    b.li(regs::STOP, 0);
    body.emit_stage1(&mut b, env);
    body.emit_stage2(&mut b, env);
    emit_leave_tx(&mut b);
    emit_commit_protocol(&mut b, env)?;
    b.halt();
    Ok(GeneratedThreads {
        threads: vec![GeneratedThread {
            core: 0,
            program: Arc::new(b.build()?),
        }],
    })
}

/// Builds the thread programs for `paradigm` starting at transaction `n0`.
pub fn build_paradigm(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    match paradigm {
        Paradigm::Sequential => build_sequential(body, env, n0),
        Paradigm::Doall => build_doall(body, env, n0),
        Paradigm::Doacross => build_doacross(body, env, n0),
        Paradigm::Dswp | Paradigm::PsDswp => build_psdswp(body, env, n0),
    }
}

/// Like [`build_paradigm`], but statically verifies the generated set with
/// `hmtx-analysis` (the full rule set: MTX protocol, queue matching and
/// deadlock, store escape) and rejects it with
/// [`SimError::Verification`] on *any* diagnostic. Opt-in: emission-time
/// cost is a few passes over each program, so hot recovery paths keep
/// calling [`build_paradigm`].
pub fn build_paradigm_verified(
    paradigm: Paradigm,
    body: &dyn LoopBody,
    env: &LoopEnv,
    n0: u64,
) -> Result<GeneratedThreads, SimError> {
    let generated = build_paradigm(paradigm, body, env, n0)?;
    let report = verify_generated(&generated);
    if report.is_clean() {
        Ok(generated)
    } else {
        Err(SimError::Verification(report.into_error_payload()))
    }
}

/// Verifies an already-generated thread set, mapping each thread onto its
/// target core the way `run_loop` will launch it (gaps are empty programs).
pub fn verify_generated(generated: &GeneratedThreads) -> hmtx_analysis::VerifyReport {
    let ncores = generated
        .threads
        .iter()
        .map(|t| t.core + 1)
        .max()
        .unwrap_or(0);
    let empty = Program::default();
    let mut per_core: Vec<&Program> = vec![&empty; ncores];
    for t in &generated.threads {
        per_core[t.core] = &t.program;
    }
    hmtx_analysis::verify_set(&per_core)
}
