//! Property tests for the wire vocabulary (`wire.rs`) and the JSON decoder
//! (`json.rs`): arbitrary [`JobSpec`]s, [`StatsSnapshot`]s and
//! [`Diagnostic`]s round-trip through their canonical JSON; the job key is
//! invariant under key reordering; the decoder rejects truncated input,
//! unknown fields and over-deep nesting without panicking.
//!
//! The frame layer itself (length prefix, `MAX_FRAME`) lives in
//! `hmtx-server` and is property-tested in
//! `crates/server/tests/proptest_frames.rs`.

use hmtx_types::{
    diagnostic_to_json, BenchRef, Diagnostic, FaultSpec, JobSpec, Json, Severity, StatsSnapshot,
    VictimPolicy, WireBase, WireParadigm, WireScale, WireVariant,
};
use proptest::prelude::*;

const PARADIGMS: [WireParadigm; 9] = [
    WireParadigm::Sequential,
    WireParadigm::Paper,
    WireParadigm::SmtxMin,
    WireParadigm::SmtxSub,
    WireParadigm::SmtxMax,
    WireParadigm::Doall,
    WireParadigm::Doacross,
    WireParadigm::Dswp,
    WireParadigm::PsDswp,
];

const SCALES: [WireScale; 3] = [WireScale::Quick, WireScale::Standard, WireScale::Stress];

/// An arbitrary spec covering every benchmark/paradigm/scale/base/variant
/// shape, with in-range variant parameters and an optional fault plan.
fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (any::<bool>(), any::<u64>(), 0u64..1_000_001),
    )
        .prop_map(|(a, b, c, (with_fault, seed, rate))| {
            let benchmark = match a % 4 {
                0 => BenchRef::Suite((a / 4 % 16) as u32),
                1 => BenchRef::SlaStress,
                2 => BenchRef::ScalingLoop,
                _ => BenchRef::Fig1Loop,
            };
            let variant = match c % 9 {
                0 => WireVariant::Base,
                1 => WireVariant::Commit { lazy: c & 16 != 0 },
                2 => WireVariant::Sla {
                    enabled: c & 16 != 0,
                },
                3 => WireVariant::VidBits((2 + c / 9 % 15) as u32),
                4 => WireVariant::Victim(if c & 16 != 0 {
                    VictimPolicy::PreferSafeOverflow
                } else {
                    VictimPolicy::PlainLru
                }),
                5 => WireVariant::Bounded {
                    unbounded: c & 16 != 0,
                },
                6 => WireVariant::ScalingBase,
                7 => WireVariant::ScalingFabric {
                    cores: (1 + c / 9 % 64) as u32,
                    directory: c & 16 != 0,
                },
                _ => WireVariant::QueueLatency(c / 9 % 1_000_001),
            };
            JobSpec {
                benchmark,
                paradigm: PARADIGMS[(b % 9) as usize],
                scale: SCALES[(b / 9 % 3) as usize],
                base: if b / 27 % 2 == 0 {
                    WireBase::Paper
                } else {
                    WireBase::Test
                },
                variant,
                fault: with_fault.then_some(FaultSpec {
                    seed,
                    rate_ppm: rate as u32,
                }),
            }
        })
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(a, b, c, d)| StatsSnapshot {
            requests: a.0,
            job_requests: a.1,
            mem_hits: a.2,
            disk_hits: a.3,
            coalesced_hits: b.0,
            misses: b.1,
            executed: b.2,
            rejected_busy: b.3,
            rejected_draining: c.0,
            deadline_timeouts: c.1,
            errors: c.2,
            queue_depth: c.3,
            inflight: d.0,
            p50_service_us: d.1,
            p99_service_us: d.2,
            p999_service_us: d.3,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A spec survives `to_json` → `from_json` and a full trip through the
    /// canonical *text*, and the content-addressed key is stable across
    /// both trips.
    #[test]
    fn specs_round_trip_through_canonical_json(spec in arb_spec()) {
        prop_assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
        let canonical = spec.canonical();
        let reparsed = JobSpec::from_json(&Json::parse(&canonical).unwrap()).unwrap();
        prop_assert_eq!(reparsed, spec);
        prop_assert_eq!(reparsed.key(), spec.key());
        prop_assert_eq!(reparsed.canonical(), canonical);
    }

    /// The job key only depends on the job, not on the key order the client
    /// happened to use: any rotation of the top-level fields parses to the
    /// same spec and therefore the same key.
    #[test]
    fn job_key_is_invariant_under_field_reordering(spec in arb_spec(), r in 0usize..6) {
        let Json::Obj(mut fields) = spec.to_json() else { panic!("specs serialize to objects") };
        let n = fields.len().max(1);
        fields.rotate_left(r % n);
        let reordered = Json::Obj(fields).compact();
        let reparsed = JobSpec::from_json(&Json::parse(&reordered).unwrap()).unwrap();
        prop_assert_eq!(reparsed.key(), spec.key());
    }

    /// Every strict prefix of the canonical bytes is rejected by the JSON
    /// decoder with an error — never a panic, never a silent partial value.
    #[test]
    fn truncated_canonical_specs_never_parse(spec in arb_spec()) {
        let canonical = spec.canonical();
        for cut in 0..canonical.len() {
            prop_assert!(
                Json::parse(&canonical[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    /// A stray top-level field makes the spec unparseable: two spellings of
    /// a request can never alias distinct cache keys.
    #[test]
    fn unknown_spec_fields_are_rejected(spec in arb_spec(), name in "x_[a-z]{0,8}") {
        let Json::Obj(mut fields) = spec.to_json() else { panic!("specs serialize to objects") };
        fields.push((name, Json::Uint(1)));
        prop_assert!(JobSpec::from_json(&Json::Obj(fields)).is_err());
    }

    /// Server stats snapshots round-trip (the derived `cache_hits` field is
    /// recomputed, not stored).
    #[test]
    fn stats_snapshots_round_trip(stats in arb_stats()) {
        prop_assert_eq!(StatsSnapshot::from_json(&stats.to_json()).unwrap(), stats);
        let text = stats.to_json().compact();
        prop_assert_eq!(
            StatsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap(),
            stats
        );
    }

    /// `diagnostic_to_json` and the handwritten `render_json` agree on the
    /// same bytes, and the fields survive a parse round-trip.
    #[test]
    fn diagnostics_round_trip_and_renderers_agree(
        core in 0usize..64,
        pc in 0usize..4096,
        warn in any::<bool>(),
        message in "[a-zA-Z0-9 .:_-]{0,24}",
    ) {
        let d = Diagnostic {
            severity: if warn { Severity::Warning } else { Severity::Error },
            rule: "queue-no-producer",
            core,
            pc,
            message,
        };
        let json = diagnostic_to_json(&d);
        prop_assert_eq!(Json::parse(&d.render_json()).unwrap().compact(), json.compact());
        prop_assert_eq!(json.get("severity").and_then(Json::as_str), Some(d.severity.name()));
        prop_assert_eq!(json.get("rule").and_then(Json::as_str), Some(d.rule));
        prop_assert_eq!(json.get("core").and_then(Json::as_u64), Some(d.core as u64));
        prop_assert_eq!(json.get("pc").and_then(Json::as_u64), Some(d.pc as u64));
        prop_assert_eq!(json.get("message").and_then(Json::as_str), Some(d.message.as_str()));
    }

    /// Nesting deeper than the decoder's recursion budget is rejected with
    /// an error (not a stack overflow); shallow nesting still parses.
    #[test]
    fn over_deep_nesting_is_rejected(depth in 66usize..600) {
        let deep = "[".repeat(depth) + &"]".repeat(depth);
        prop_assert!(Json::parse(&deep).is_err());
        let shallow = "[".repeat(16) + &"]".repeat(16);
        prop_assert!(Json::parse(&shallow).is_ok());
    }
}
