//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The simulator's hot paths key hash maps by small fixed-width integers
//! (line addresses, VIDs). The standard library's SipHash is
//! DoS-resistant but costs more per lookup than the lookup itself for
//! such keys. This module provides the well-known Fx multiply-rotate
//! hash (as used by rustc) — deterministic across runs and platforms,
//! which also matters for reproducibility: nothing about iteration order
//! may depend on a per-process random seed.
//!
//! Internal maps only — never hash untrusted external input with this.
//!
//! # Examples
//!
//! ```
//! use hmtx_types::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(3, "three");
//! assert_eq!(m.get(&3), Some(&"three"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplication constant (golden-ratio derived, 64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing the Fx multiply-rotate hash.
///
/// Deterministic (no random state), very fast on small integer keys,
/// not collision-resistant against adversarial input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`] (zero-sized, no seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let one = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(one(42), one(42));
        assert_ne!(one(1), one(2));
        // Sequential keys (typical line addresses) land in distinct slots.
        let hashes: HashSet<u64> = (0..1024u64).map(one).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        let mut s: FxHashSet<u16> = FxHashSet::default();
        for i in 0..100 {
            m.insert(i, i * 2);
            s.insert(i as u16);
        }
        assert_eq!(m.get(&7), Some(&14));
        assert!(s.contains(&99));
        assert_eq!(m.len(), 100);
    }
}
