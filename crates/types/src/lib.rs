//! Shared vocabulary types for the HMTX (Hardware Multithreaded Transactions)
//! reproduction.
//!
//! This crate defines the newtypes used across every other crate in the
//! workspace — version IDs ([`Vid`]), guest addresses ([`Addr`],
//! [`LineAddr`]), core/thread identifiers — together with the architectural
//! configuration structures that mirror Table 2 of the paper.
//!
//! # Examples
//!
//! ```
//! use hmtx_types::{Addr, LineAddr, Vid, MachineConfig};
//!
//! let cfg = MachineConfig::paper_default();
//! assert_eq!(cfg.num_cores, 4);
//!
//! let a = Addr(0x1234);
//! assert_eq!(a.line(), LineAddr(0x1234 >> 6));
//! assert!(Vid::NON_SPECULATIVE.is_non_speculative());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod error;
pub mod hash;
pub mod ids;
pub mod json;
pub mod model;
pub mod wire;

pub use config::{
    CacheConfig, FaultConfig, HmtxConfig, HytmConfig, Interconnect, MachineConfig, SeedBug,
    SmtxConfig, VictimPolicy, LINE_SIZE, LINE_SIZE_BITS,
};
pub use diag::{Diagnostic, Severity};
pub use error::{ConfigError, SimError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Addr, CoreId, Cycle, LineAddr, QueueId, ThreadId, Vid, VID_EXHAUSTION_SENTINEL};
pub use json::{Json, JsonError};
pub use model::{ModelCheckConfig, ModelCheckReport, ModelViolation};
pub use wire::{
    diagnostic_to_json,
    content_key, BenchRef, FaultSpec, JobSpec, StatsSnapshot, WireBase, WireError, WireParadigm,
    WireScale, WireVariant,
};
