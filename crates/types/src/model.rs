//! Configuration and report types for the explicit-state protocol model
//! checker (`hmtx-model`, crate `hmtx-modelcheck`).
//!
//! These live in `hmtx-types` so the checker, the CLI layer, and the test
//! harnesses share one vocabulary without depending on the checker crate.

use std::fmt;

use crate::SeedBug;

/// Bounds of the finite protocol model the checker exhausts.
///
/// The model is `cores` L1 caches × `lines` distinct cache lines ×
/// transactions numbered `1..=max_vid(vid_bits)`, with data abstracted to
/// one deterministically stamped word per line. Every field participates in
/// the reachable-state count reported per configuration (EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCheckConfig {
    /// Number of cores (private L1s) in the model.
    pub cores: usize,
    /// Number of distinct cache lines the transactions touch.
    pub lines: usize,
    /// VID register width; transactions are `1..=2^vid_bits - 1`.
    pub vid_bits: u32,
    /// Optional planted defect, threaded into the simulated memory system
    /// so the checker can prove it finds real bugs.
    pub seed_bug: Option<SeedBug>,
    /// Apply core/line symmetry reduction to the visited set (sound for
    /// the symmetric properties the checker evaluates; on by default).
    pub symmetry: bool,
    /// Hard cap on explored states (0 = unbounded). A stopped search
    /// reports `exhausted = false`.
    pub max_states: usize,
}

impl Default for ModelCheckConfig {
    fn default() -> Self {
        ModelCheckConfig {
            cores: 2,
            lines: 2,
            vid_bits: 2,
            seed_bug: None,
            symmetry: true,
            max_states: 0,
        }
    }
}

impl ModelCheckConfig {
    /// The largest VID (and transaction count) of the model: `2^vid_bits - 1`.
    #[must_use]
    pub fn max_vid(&self) -> u16 {
        ((1u32 << self.vid_bits.min(15)) - 1) as u16
    }

    /// The canonical kernel name for this configuration, e.g. `model-c2-l2-v2`.
    ///
    /// The name is self-describing so a lowered `ScheduleSeed` carries
    /// everything a replay needs to reconstruct the op kernel.
    #[must_use]
    pub fn kernel_name(&self) -> String {
        format!("model-c{}-l{}-v{}", self.cores, self.lines, self.vid_bits)
    }

    /// Parses a kernel name produced by [`Self::kernel_name`].
    #[must_use]
    pub fn parse_kernel_name(name: &str) -> Option<ModelCheckConfig> {
        let rest = name.strip_prefix("model-c")?;
        let (cores, rest) = rest.split_once("-l")?;
        let (lines, vid_bits) = rest.split_once("-v")?;
        Some(ModelCheckConfig {
            cores: cores.parse().ok()?,
            lines: lines.parse().ok()?,
            vid_bits: vid_bits.parse().ok()?,
            ..ModelCheckConfig::default()
        })
    }
}

/// One property violation found during the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// The violated rule id — one of `MemorySystem::check_invariants`'s six
    /// rules, or a checker-level rule (`committed modVID never stays
    /// speculative`, `no duplicate Exclusive after abort`,
    /// `forwarded values serialize`).
    pub rule: String,
    /// Human-readable details (line states, expected vs observed values).
    pub detail: String,
    /// Search depth (number of actions from the initial state).
    pub depth: usize,
    /// The action trace from the initial state, one rendered action per
    /// element; lowering turns this into a replayable `ScheduleSeed`.
    pub trace: Vec<String>,
    /// Transaction-major op order (indices into the model kernel) executed
    /// along the trace — the `order` field of the lowered seed.
    pub order: Vec<usize>,
}

/// The result of one exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCheckReport {
    /// The configuration searched.
    pub config: ModelCheckConfig,
    /// Distinct canonical states reached.
    pub reachable: usize,
    /// Total transitions (edges) executed.
    pub transitions: usize,
    /// Peak BFS frontier size.
    pub frontier_peak: usize,
    /// `true` if the search ran to fixpoint (no `max_states` cutoff).
    pub exhausted: bool,
    /// Every violation found (empty = the configuration is verified).
    pub violations: Vec<ModelViolation>,
}

impl ModelCheckReport {
    /// Whether the searched state space satisfied every property.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ModelCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model {}: {} reachable states, {} transitions, frontier peak {}, {}",
            self.config.kernel_name(),
            self.reachable,
            self.transitions,
            self.frontier_peak,
            if self.exhausted { "exhausted" } else { "CUT OFF" },
        )?;
        if self.violations.is_empty() {
            write!(f, "no violations")
        } else {
            for v in &self.violations {
                writeln!(f, "VIOLATION [{}] at depth {}: {}", v.rule, v.depth, v.detail)?;
                for step in &v.trace {
                    writeln!(f, "    {step}")?;
                }
            }
            write!(f, "{} violation(s)", self.violations.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_name_round_trips() {
        let cfg = ModelCheckConfig {
            cores: 3,
            lines: 2,
            vid_bits: 4,
            ..ModelCheckConfig::default()
        };
        let parsed = ModelCheckConfig::parse_kernel_name(&cfg.kernel_name()).unwrap();
        assert_eq!(parsed.cores, 3);
        assert_eq!(parsed.lines, 2);
        assert_eq!(parsed.vid_bits, 4);
    }

    #[test]
    fn kernel_name_rejects_foreign_names() {
        assert_eq!(ModelCheckConfig::parse_kernel_name("migrated_line"), None);
        assert_eq!(ModelCheckConfig::parse_kernel_name("model-cX-l2-v2"), None);
    }

    #[test]
    fn clean_report_displays_reachable_count() {
        let r = ModelCheckReport {
            config: ModelCheckConfig::default(),
            reachable: 42,
            transitions: 99,
            frontier_peak: 7,
            exhausted: true,
            violations: Vec::new(),
        };
        assert!(r.is_clean());
        let text = r.to_string();
        assert!(text.contains("42 reachable states"), "{text}");
        assert!(text.contains("no violations"), "{text}");
    }
}
