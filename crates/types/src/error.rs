//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied.
///
/// # Examples
///
/// ```
/// use hmtx_types::{CacheConfig, ConfigError};
/// let bad = CacheConfig { size_bytes: 100, ways: 3, latency: 1 };
/// let err: ConfigError = bad.validate().unwrap_err();
/// assert!(err.to_string().contains("multiple"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// A simulation failed in a way that is a bug in the *guest program*
/// (not a misspeculation, which is a modeled architectural event).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SimError {
    /// The machine could not be constructed because its configuration is
    /// invalid (bad cache geometry, zero cores, ...).
    Config(ConfigError),
    /// A guest memory access crossed a cache-line boundary.
    UnalignedAccess { addr: u64 },
    /// A guest program ran past its instruction budget (likely livelock).
    InstructionBudgetExceeded { budget: u64 },
    /// Guest code referenced an undefined queue, register, or label.
    BadProgram(String),
    /// A transaction commit was requested out of consecutive VID order.
    NonConsecutiveCommit { expected: u16, got: u16 },
    /// The runtime recovered `recoveries` times without completing the run
    /// (see `MachineConfig::max_recoveries`): the program is livelocked.
    Livelock { recoveries: u64, last_cause: String },
    /// Static verification rejected the program before it ran (see the
    /// `hmtx-analysis` crate). Carries every diagnostic the verifier
    /// produced, errors first.
    Verification(Vec<crate::Diagnostic>),
    /// A replayed schedule seed (`hmtx-run --replay`) reproduced a
    /// protocol violation. This is the *expected* outcome when replaying
    /// a model-checker counterexample; the message names the violated
    /// rule.
    Replay(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::UnalignedAccess { addr } => {
                write!(
                    f,
                    "guest access at 0x{addr:x} crosses a cache line boundary"
                )
            }
            SimError::InstructionBudgetExceeded { budget } => {
                write!(f, "guest program exceeded instruction budget of {budget}")
            }
            SimError::BadProgram(msg) => write!(f, "malformed guest program: {msg}"),
            SimError::NonConsecutiveCommit { expected, got } => {
                write!(
                    f,
                    "commit of v{got} violates consecutive order (expected v{expected})"
                )
            }
            SimError::Livelock {
                recoveries,
                last_cause,
            } => {
                write!(
                    f,
                    "livelock: {recoveries} recoveries without completing (last cause: {last_cause})"
                )
            }
            SimError::Verification(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == crate::Severity::Error)
                    .count();
                write!(
                    f,
                    "static verification failed: {} diagnostic(s), {errors} error(s)",
                    diags.len()
                )?;
                if let Some(first) = diags.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            SimError::Replay(msg) => write!(f, "replay failed: {msg}"),
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let e = ConfigError::new("cache set count must be a power of two");
        let s = e.to_string();
        assert!(s.starts_with("invalid configuration"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn sim_error_messages() {
        assert!(SimError::UnalignedAccess { addr: 0x3f }
            .to_string()
            .contains("0x3f"));
        assert!(SimError::InstructionBudgetExceeded { budget: 10 }
            .to_string()
            .contains("10"));
        assert!(SimError::NonConsecutiveCommit {
            expected: 2,
            got: 4
        }
        .to_string()
        .contains("v4"));
        assert!(SimError::BadProgram("no label".into())
            .to_string()
            .contains("no label"));
        let e = SimError::Livelock {
            recoveries: 1_000,
            last_cause: "StoreBelowHighVid".into(),
        };
        assert!(e.to_string().contains("1000 recoveries"));
        assert!(e.to_string().contains("StoreBelowHighVid"));
    }

    #[test]
    fn verification_error_counts_errors_and_shows_first() {
        let e = SimError::Verification(vec![
            crate::Diagnostic {
                severity: crate::Severity::Error,
                rule: "mtx-halt-speculative",
                core: 0,
                pc: 4,
                message: "halt inside MTX".into(),
            },
            crate::Diagnostic {
                severity: crate::Severity::Warning,
                rule: "reg-use-before-def",
                core: 1,
                pc: 2,
                message: "r3 read before def".into(),
            },
        ]);
        let s = e.to_string();
        assert!(s.contains("2 diagnostic(s), 1 error(s)"), "{s}");
        assert!(s.contains("mtx-halt-speculative"), "{s}");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<SimError>();
    }
}
