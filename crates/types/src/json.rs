//! A small self-contained JSON value: parser and serializer.
//!
//! The workspace is built offline with no serde, and two subsystems need
//! JSON: the experiment reports (`hmtx-bench`, serialization only) and the
//! `hmtx-serve` wire protocol (parse *and* serialize, with canonical bytes
//! for content-addressed job keys). Both share this one implementation so a
//! report value serialized here parses back to the identical value, and a
//! value re-serialized from a parse is byte-identical to its source's
//! canonical form.
//!
//! Design points that matter for the serving layer:
//!
//! * **Ordered objects.** [`Json::Obj`] keeps insertion order, so canonical
//!   serialization is deterministic without a sort pass.
//! * **Exact integers.** Integers parse into [`Json::Uint`]/[`Json::Int`]
//!   (never a lossy `f64`) so cycle counts and seeds round-trip exactly.
//! * **Stable floats.** Floats serialize via `{:?}`, the shortest
//!   representation that round-trips; non-finite values serialize as
//!   `null` (JSON has no `NaN`).
//! * **Hostile input.** [`Json::parse`] enforces a nesting-depth limit and
//!   never recurses past it, so a malicious frame cannot overflow the
//!   parser's stack.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts.
pub const MAX_DEPTH: usize = 64;

/// A JSON value with insertion-ordered objects (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A non-negative integer (cycle counts and the like, kept exact).
    Uint(u64),
    /// A negative integer (kept exact).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs (insertion order kept).
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes compactly (no whitespace, no trailing newline). This is
    /// the canonical form content-addressed keys hash.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Parses a JSON document (the full input must be one value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, trailing bytes, or nesting
    /// deeper than [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// `pretty()` when `indent`, `compact()` otherwise.
    fn write(&self, out: &mut String, depth: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` always keeps a decimal point or exponent, so
                    // the value round-trips as a float.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = depth {
                        out.push('\n');
                        out.push_str(&"  ".repeat(d + 1));
                    }
                    item.write(out, depth.map(|d| d + 1));
                }
                if let Some(d) = depth {
                    out.push('\n');
                    out.push_str(&"  ".repeat(d));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = depth {
                        out.push('\n');
                        out.push_str(&"  ".repeat(d + 1));
                    }
                    write_string(out, k);
                    out.push(':');
                    if depth.is_some() {
                        out.push(' ');
                    }
                    v.write(out, depth.map(|d| d + 1));
                }
                if let Some(d) = depth {
                    out.push('\n');
                    out.push_str(&"  ".repeat(d));
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields: Vec<(String, Json)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // consumed (input is a &str, so sequences are valid).
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }
}

/// Byte length of the UTF-8 sequence whose first byte is `b`.
fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializer_escapes_and_formats() {
        let v = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n", Json::Num(1.0)),
            ("u", Json::Uint(u64::MAX)),
            ("i", Json::Int(-3)),
            ("inf", Json::Num(f64::INFINITY)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains(r#""s": "a\"b\\c\nd\u0001""#), "{text}");
        assert!(text.contains("\"n\": 1.0"), "{text}");
        assert!(text.contains(&format!("\"u\": {}", u64::MAX)), "{text}");
        assert!(text.contains("\"i\": -3"), "{text}");
        assert!(text.contains("\"inf\": null"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn compact_has_no_whitespace() {
        let v = Json::obj(vec![
            ("a", Json::Uint(1)),
            ("b", Json::Arr(vec![Json::Str("x y".into()), Json::Bool(false)])),
        ]);
        assert_eq!(v.compact(), r#"{"a":1,"b":["x y",false]}"#);
    }

    #[test]
    fn parse_round_trips_compact_bytes() {
        let src = r#"{"a":1,"b":[-2,3.5,"x\n\u00e9",true,null],"c":{"d":18446744073709551615}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.compact(), src.replace("\\u00e9", "é"));
        // A second round trip is a fixed point.
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::Uint(u64::MAX));
        let v = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(v, Json::Int(i64::MIN));
        let v = Json::parse("1.5e2").unwrap();
        assert_eq!(v, Json::Num(150.0));
    }

    #[test]
    fn float_formatting_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.5e-8, 123456789.123456] {
            let v = Json::Num(x);
            let back = Json::parse(&v.compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "", "{", "[", "tru", "nul", "{\"a\"}", "{\"a\":}", "[1,]", "{,}", "\"", "\"\\q\"",
            "01x", "1 2", "{\"a\":1,\"a\":2}", "nan", "-", "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","n":7,"b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
