//! Machine-readable diagnostics emitted by the static MTX verifier
//! (`hmtx-analysis` / the `hmtx-verify` tool).
//!
//! The type lives here — rather than in the analysis crate — so that
//! producers (`hmtx-analysis`), consumers (tests, the CLI, the runtime's
//! verified-build hooks), and [`SimError`](crate::SimError) can all share it
//! without dependency cycles.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` diagnostics describe programs the verifier believes will
/// misbehave at run time (deadlock, halt inside a transaction, commit the
/// wrong VID). `Warning` diagnostics describe suspicious-but-possibly-
/// intentional constructs (reads of never-written registers, stores that
/// may alias transactional data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious construct; the program may still be correct.
    Warning,
    /// The verifier believes the program is wrong.
    Error,
}

impl Severity {
    /// Lowercase display name (`"warning"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the static verifier.
///
/// # Examples
///
/// ```
/// use hmtx_types::{Diagnostic, Severity};
/// let d = Diagnostic {
///     severity: Severity::Error,
///     rule: "mtx-halt-speculative",
///     core: 0,
///     pc: 7,
///     message: "halt while speculative (MTX begun at pc 2 never ended)".into(),
/// };
/// assert!(d.to_string().contains("core 0 pc 7"));
/// assert!(d.render_json().contains("\"rule\":\"mtx-halt-speculative\""));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable rule identifier (e.g. `"queue-no-producer"`); tests and CI
    /// match on this, so it never carries formatted detail.
    pub rule: &'static str,
    /// Index of the program within the verified set (one program per core).
    pub core: usize,
    /// Instruction index the diagnostic anchors to.
    pub pc: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic as a single JSON object (handwritten, like
    /// the bench harness's report writer — the workspace has no serde).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"rule\":\"{}\",\"core\":{},\"pc\":{},\"message\":\"{}\"}}",
            self.severity,
            self.rule,
            self.core,
            self.pc,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] core {} pc {}: {}",
            self.severity, self.rule, self.core, self.pc, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            rule: "reg-use-before-def",
            core: 2,
            pc: 13,
            message: "r4 read before any definition".into(),
        }
    }

    #[test]
    fn display_is_greppable() {
        let s = diag().to_string();
        assert!(s.contains("warning"));
        assert!(s.contains("[reg-use-before-def]"));
        assert!(s.contains("core 2 pc 13"));
    }

    #[test]
    fn json_escapes_specials() {
        let mut d = diag();
        d.message = "a \"quoted\"\nline\\".into();
        let j = d.render_json();
        assert!(j.contains("a \\\"quoted\\\"\\nline\\\\"), "{j}");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::Error.name(), "error");
    }
}
