//! Wire-level job and response types for the `hmtx-serve` protocol.
//!
//! A [`JobSpec`] names one simulation — benchmark, execution paradigm,
//! machine configuration (base + variant), fault plan, and workload scale —
//! as plain data, independent of the crates that know how to run it. Specs
//! serialize to JSON in one **canonical** form ([`JobSpec::canonical`]):
//! fixed key order, defaults materialized, integers exact. The canonical
//! bytes are what the content-addressed job key ([`JobSpec::key`]) hashes,
//! so two requests describing the same simulation — whatever key order or
//! whitespace the client used — always land on the same cache entry.
//!
//! The mapping from a spec to an executable simulation lives in
//! `hmtx-bench` (`jobspec` module); this crate only defines the vocabulary
//! so clients do not need to link the simulator.

use std::fmt;

use crate::json::Json;
use crate::{Diagnostic, Severity, VictimPolicy};

/// What simulates: one of the 8 paper workload analogues by suite index, or
/// a synthetic loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchRef {
    /// `suite(scale)[index]`.
    Suite(u32),
    /// The §5.1 wrong-path hazard loop.
    SlaStress,
    /// The §8 core-count scaling loop.
    ScalingLoop,
    /// The instrumented pipeline loop behind Figure 1.
    Fig1Loop,
}

impl BenchRef {
    fn to_wire(self) -> String {
        match self {
            BenchRef::Suite(i) => format!("suite:{i}"),
            BenchRef::SlaStress => "sla-stress".into(),
            BenchRef::ScalingLoop => "scaling-loop".into(),
            BenchRef::Fig1Loop => "fig1-loop".into(),
        }
    }

    fn from_wire(s: &str) -> Result<Self, WireError> {
        if let Some(i) = s.strip_prefix("suite:") {
            let i: u32 = i
                .parse()
                .map_err(|_| WireError::new(format!("bad suite index `{i}`")))?;
            return Ok(BenchRef::Suite(i));
        }
        match s {
            "sla-stress" => Ok(BenchRef::SlaStress),
            "scaling-loop" => Ok(BenchRef::ScalingLoop),
            "fig1-loop" => Ok(BenchRef::Fig1Loop),
            _ => Err(WireError::new(format!("unknown benchmark `{s}`"))),
        }
    }
}

/// Which execution model runs the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireParadigm {
    /// Single-core sequential baseline.
    Sequential,
    /// The workload's paper paradigm on HMTX.
    Paper,
    /// Software-MTX, expert-minimized read/write sets.
    SmtxMin,
    /// Software-MTX, validation on shared accesses.
    SmtxSub,
    /// Software-MTX, every load and store validated.
    SmtxMax,
    /// Explicit DOALL.
    Doall,
    /// Explicit DOACROSS.
    Doacross,
    /// Explicit two-stage DSWP.
    Dswp,
    /// Explicit parallel-stage DSWP.
    PsDswp,
    /// Hybrid TM: bounded HMTX fast path with an SMTX software slow path.
    Hytm,
}

impl WireParadigm {
    /// The wire name (also used by CLI flags).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireParadigm::Sequential => "seq",
            WireParadigm::Paper => "paper",
            WireParadigm::SmtxMin => "smtx-min",
            WireParadigm::SmtxSub => "smtx-sub",
            WireParadigm::SmtxMax => "smtx-max",
            WireParadigm::Doall => "doall",
            WireParadigm::Doacross => "doacross",
            WireParadigm::Dswp => "dswp",
            WireParadigm::PsDswp => "ps-dswp",
            WireParadigm::Hytm => "hytm",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on an unknown name.
    pub fn from_name(s: &str) -> Result<Self, WireError> {
        use WireParadigm::*;
        for p in [
            Sequential, Paper, SmtxMin, SmtxSub, SmtxMax, Doall, Doacross, Dswp, PsDswp, Hytm,
        ] {
            if p.name() == s {
                return Ok(p);
            }
        }
        Err(WireError::new(format!("unknown paradigm `{s}`")))
    }
}

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireScale {
    /// Small test instances (seconds).
    Quick,
    /// The paper-figure instances.
    Standard,
    /// Long-transaction stress instances.
    Stress,
}

impl WireScale {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireScale::Quick => "quick",
            WireScale::Standard => "standard",
            WireScale::Stress => "stress",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on an unknown name.
    pub fn from_name(s: &str) -> Result<Self, WireError> {
        match s {
            "quick" => Ok(WireScale::Quick),
            "standard" => Ok(WireScale::Standard),
            "stress" => Ok(WireScale::Stress),
            _ => Err(WireError::new(format!("unknown scale `{s}`"))),
        }
    }
}

/// Which base machine configuration the variant applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireBase {
    /// Table 2 exactly (`MachineConfig::paper_default`).
    Paper,
    /// The small test configuration (`MachineConfig::test_default`).
    Test,
}

impl WireBase {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WireBase::Paper => "paper",
            WireBase::Test => "test",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on an unknown name.
    pub fn from_name(s: &str) -> Result<Self, WireError> {
        match s {
            "paper" => Ok(WireBase::Paper),
            "test" => Ok(WireBase::Test),
            _ => Err(WireError::new(format!("unknown base config `{s}`"))),
        }
    }
}

/// A named configuration variant, mirroring the experiment harness's
/// ablation knobs (applied to the base configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireVariant {
    /// The base configuration unchanged.
    Base,
    /// Lazy vs eager commit processing (§5.3).
    Commit {
        /// Lazy commit processing when true.
        lazy: bool,
    },
    /// Speculative load acknowledgments on/off (§5.1).
    Sla {
        /// SLAs enabled when true.
        enabled: bool,
    },
    /// VID field width in bits (§4.6).
    VidBits(u32),
    /// LLC victim policy under constrained caches (§5.4).
    Victim(VictimPolicy),
    /// Bounded vs unbounded speculative sets (§8).
    Bounded {
        /// Memory-side overflow table enabled when true.
        unbounded: bool,
    },
    /// §8 scaling study baseline fabric.
    ScalingBase,
    /// §8 scaling fabric at a core count.
    ScalingFabric {
        /// Number of cores.
        cores: u32,
        /// Banked directory when true, snoopy bus when false.
        directory: bool,
    },
    /// Hardware queue / cross-core latency (§2.1).
    QueueLatency(u64),
}

impl WireVariant {
    fn to_json(self) -> Json {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.into()));
        Json::Obj(match self {
            WireVariant::Base => vec![kind("base")],
            WireVariant::Commit { lazy } => {
                vec![kind("commit"), ("lazy".into(), Json::Bool(lazy))]
            }
            WireVariant::Sla { enabled } => {
                vec![kind("sla"), ("enabled".into(), Json::Bool(enabled))]
            }
            WireVariant::VidBits(bits) => {
                vec![kind("vid-bits"), ("bits".into(), Json::Uint(bits.into()))]
            }
            WireVariant::Victim(VictimPolicy::PreferSafeOverflow) => vec![kind("victim-safe")],
            WireVariant::Victim(VictimPolicy::PlainLru) => vec![kind("victim-lru")],
            WireVariant::Bounded { unbounded } => {
                vec![kind("bounded"), ("unbounded".into(), Json::Bool(unbounded))]
            }
            WireVariant::ScalingBase => vec![kind("scaling-base")],
            WireVariant::ScalingFabric { cores, directory } => vec![
                kind("scaling-fabric"),
                ("cores".into(), Json::Uint(cores.into())),
                ("directory".into(), Json::Bool(directory)),
            ],
            WireVariant::QueueLatency(latency) => vec![
                kind("queue-latency"),
                ("latency".into(), Json::Uint(latency)),
            ],
        })
    }

    fn from_json(v: &Json) -> Result<Self, WireError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("variant needs a string `kind`"))?;
        let flag = |name: &str| {
            v.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| WireError::new(format!("variant `{kind}` needs bool `{name}`")))
        };
        let uint = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::new(format!("variant `{kind}` needs uint `{name}`")))
        };
        let variant = match kind {
            "base" => WireVariant::Base,
            "commit" => WireVariant::Commit { lazy: flag("lazy")? },
            "sla" => WireVariant::Sla {
                enabled: flag("enabled")?,
            },
            "vid-bits" => {
                let bits = uint("bits")?;
                if !(2..=16).contains(&bits) {
                    return Err(WireError::new(format!("vid bits {bits} out of range 2..=16")));
                }
                WireVariant::VidBits(bits as u32)
            }
            "victim-safe" => WireVariant::Victim(VictimPolicy::PreferSafeOverflow),
            "victim-lru" => WireVariant::Victim(VictimPolicy::PlainLru),
            "bounded" => WireVariant::Bounded {
                unbounded: flag("unbounded")?,
            },
            "scaling-base" => WireVariant::ScalingBase,
            "scaling-fabric" => {
                let cores = uint("cores")?;
                if !(1..=64).contains(&cores) {
                    return Err(WireError::new(format!("cores {cores} out of range 1..=64")));
                }
                WireVariant::ScalingFabric {
                    cores: cores as u32,
                    directory: flag("directory")?,
                }
            }
            "queue-latency" => {
                let latency = uint("latency")?;
                if latency > 1_000_000 {
                    return Err(WireError::new("queue latency over 1M cycles"));
                }
                WireVariant::QueueLatency(latency)
            }
            _ => return Err(WireError::new(format!("unknown variant kind `{kind}`"))),
        };
        // Reject stray fields so two spellings cannot alias distinct keys.
        let known: &[&str] = match kind {
            "commit" => &["kind", "lazy"],
            "sla" => &["kind", "enabled"],
            "vid-bits" => &["kind", "bits"],
            "bounded" => &["kind", "unbounded"],
            "scaling-fabric" => &["kind", "cores", "directory"],
            "queue-latency" => &["kind", "latency"],
            _ => &["kind"],
        };
        reject_unknown(v, known)?;
        Ok(variant)
    }
}

/// A deterministic fault plan: the chaos configuration's seed and rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Injection probability in parts per million.
    pub rate_ppm: u32,
}

/// One simulation job, as named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// What simulates.
    pub benchmark: BenchRef,
    /// Under which execution model.
    pub paradigm: WireParadigm,
    /// At which workload scale.
    pub scale: WireScale,
    /// Which base machine configuration.
    pub base: WireBase,
    /// Which configuration variant applies to the base.
    pub variant: WireVariant,
    /// Optional deterministic fault plan.
    pub fault: Option<FaultSpec>,
}

impl JobSpec {
    /// A base-configuration spec with no variant and no faults.
    #[must_use]
    pub fn new(
        benchmark: BenchRef,
        paradigm: WireParadigm,
        scale: WireScale,
        base: WireBase,
    ) -> Self {
        JobSpec {
            benchmark,
            paradigm,
            scale,
            base,
            variant: WireVariant::Base,
            fault: None,
        }
    }

    /// The spec as canonical JSON: fixed key order, defaults materialized.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "benchmark".to_string(),
                Json::Str(self.benchmark.to_wire()),
            ),
            (
                "paradigm".to_string(),
                Json::Str(self.paradigm.name().into()),
            ),
            ("scale".to_string(), Json::Str(self.scale.name().into())),
            ("base".to_string(), Json::Str(self.base.name().into())),
            ("variant".to_string(), self.variant.to_json()),
        ];
        match self.fault {
            None => fields.push(("fault".into(), Json::Null)),
            Some(f) => fields.push((
                "fault".into(),
                Json::obj(vec![
                    ("seed", Json::Uint(f.seed)),
                    ("rate_ppm", Json::Uint(f.rate_ppm.into())),
                ]),
            )),
        }
        Json::Obj(fields)
    }

    /// Parses a spec from JSON. Missing `variant`/`fault` default to
    /// [`WireVariant::Base`] / no faults; unknown fields are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on missing/malformed fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        reject_unknown(
            v,
            &["benchmark", "paradigm", "scale", "base", "variant", "fault"],
        )?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::new(format!("spec needs a string `{name}`")))
        };
        let benchmark = BenchRef::from_wire(field("benchmark")?)?;
        let paradigm = WireParadigm::from_name(field("paradigm")?)?;
        let scale = WireScale::from_name(field("scale")?)?;
        let base = WireBase::from_name(field("base")?)?;
        let variant = match v.get("variant") {
            None | Some(Json::Null) => WireVariant::Base,
            Some(var) => WireVariant::from_json(var)?,
        };
        let fault = match v.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                reject_unknown(f, &["seed", "rate_ppm"])?;
                let seed = f
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| WireError::new("fault needs uint `seed`"))?;
                let rate = f
                    .get("rate_ppm")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| WireError::new("fault needs uint `rate_ppm`"))?;
                if rate > 1_000_000 {
                    return Err(WireError::new("fault rate_ppm over 1000000"));
                }
                Some(FaultSpec {
                    seed,
                    rate_ppm: rate as u32,
                })
            }
        };
        Ok(JobSpec {
            benchmark,
            paradigm,
            scale,
            base,
            variant,
            fault,
        })
    }

    /// The canonical request bytes: compact JSON in fixed key order. Two
    /// specs are the same job if and only if their canonical bytes match.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.to_json().compact()
    }

    /// The content-addressed job key: FNV-1a-128 of the canonical bytes,
    /// hex-encoded (32 characters).
    #[must_use]
    pub fn key(&self) -> String {
        content_key(self.canonical().as_bytes())
    }
}

/// FNV-1a-128 of `bytes`, hex-encoded. Used for content-addressed cache
/// keys: deterministic, dependency-free, and wide enough that accidental
/// collisions over a cache of simulation reports are not a concern
/// (the keys are not a security boundary — a client who can forge requests
/// can already request anything).
#[must_use]
pub fn content_key(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// A malformed wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad wire value: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn reject_unknown(v: &Json, known: &[&str]) -> Result<(), WireError> {
    if let Json::Obj(fields) = v {
        for (k, _) in fields {
            if !known.contains(&k.as_str()) {
                return Err(WireError::new(format!("unknown field `{k}`")));
            }
        }
        Ok(())
    } else {
        Err(WireError::new("expected an object"))
    }
}

// ----------------------------------------------------------- server stats

/// A snapshot of the serving counters, as exposed by the `stats` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests received (all types).
    pub requests: u64,
    /// Job requests received.
    pub job_requests: u64,
    /// Jobs served from the in-memory cache.
    pub mem_hits: u64,
    /// Jobs served from the on-disk store.
    pub disk_hits: u64,
    /// Jobs coalesced onto an identical in-flight execution.
    pub coalesced_hits: u64,
    /// Jobs that had to simulate.
    pub misses: u64,
    /// Simulations executed to completion.
    pub executed: u64,
    /// Job requests rejected with backpressure (queue full).
    pub rejected_busy: u64,
    /// Job requests rejected because the server is draining.
    pub rejected_draining: u64,
    /// Requests whose deadline expired while waiting.
    pub deadline_timeouts: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Admission queue depth at snapshot time.
    pub queue_depth: u64,
    /// Jobs executing at snapshot time.
    pub inflight: u64,
    /// p50 service time of executed jobs, microseconds.
    pub p50_service_us: u64,
    /// p99 service time of executed jobs, microseconds.
    pub p99_service_us: u64,
    /// p999 service time of executed jobs, microseconds.
    pub p999_service_us: u64,
}

impl StatsSnapshot {
    /// Cache hits of all kinds (memory, disk, coalesced).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.mem_hits
            .saturating_add(self.disk_hits)
            .saturating_add(self.coalesced_hits)
    }

    /// Counter-wise saturating sum, for cluster-level aggregation across
    /// backends. Every tally and gauge adds; the service-time quantiles are
    /// **not** summable across nodes and are zeroed here — an aggregator
    /// fills them from its own latency histogram (the mergeable
    /// `LatencyHistogram::combine` in `hmtx-core`).
    #[must_use]
    pub fn counter_sum(&self, other: &Self) -> Self {
        StatsSnapshot {
            requests: self.requests.saturating_add(other.requests),
            job_requests: self.job_requests.saturating_add(other.job_requests),
            mem_hits: self.mem_hits.saturating_add(other.mem_hits),
            disk_hits: self.disk_hits.saturating_add(other.disk_hits),
            coalesced_hits: self.coalesced_hits.saturating_add(other.coalesced_hits),
            misses: self.misses.saturating_add(other.misses),
            executed: self.executed.saturating_add(other.executed),
            rejected_busy: self.rejected_busy.saturating_add(other.rejected_busy),
            rejected_draining: self.rejected_draining.saturating_add(other.rejected_draining),
            deadline_timeouts: self.deadline_timeouts.saturating_add(other.deadline_timeouts),
            errors: self.errors.saturating_add(other.errors),
            queue_depth: self.queue_depth.saturating_add(other.queue_depth),
            inflight: self.inflight.saturating_add(other.inflight),
            p50_service_us: 0,
            p99_service_us: 0,
            p999_service_us: 0,
        }
    }

    /// Serializes the snapshot (fixed key order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::Uint(self.requests)),
            ("job_requests", Json::Uint(self.job_requests)),
            ("cache_hits", Json::Uint(self.cache_hits())),
            ("mem_hits", Json::Uint(self.mem_hits)),
            ("disk_hits", Json::Uint(self.disk_hits)),
            ("coalesced_hits", Json::Uint(self.coalesced_hits)),
            ("misses", Json::Uint(self.misses)),
            ("executed", Json::Uint(self.executed)),
            ("rejected_busy", Json::Uint(self.rejected_busy)),
            ("rejected_draining", Json::Uint(self.rejected_draining)),
            ("deadline_timeouts", Json::Uint(self.deadline_timeouts)),
            ("errors", Json::Uint(self.errors)),
            ("queue_depth", Json::Uint(self.queue_depth)),
            ("inflight", Json::Uint(self.inflight)),
            ("p50_service_us", Json::Uint(self.p50_service_us)),
            ("p99_service_us", Json::Uint(self.p99_service_us)),
            ("p999_service_us", Json::Uint(self.p999_service_us)),
        ])
    }

    /// Parses a snapshot (the derived `cache_hits` field is ignored).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on missing/malformed fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::new(format!("stats needs uint `{name}`")))
        };
        Ok(StatsSnapshot {
            requests: uint("requests")?,
            job_requests: uint("job_requests")?,
            mem_hits: uint("mem_hits")?,
            disk_hits: uint("disk_hits")?,
            coalesced_hits: uint("coalesced_hits")?,
            misses: uint("misses")?,
            executed: uint("executed")?,
            rejected_busy: uint("rejected_busy")?,
            rejected_draining: uint("rejected_draining")?,
            deadline_timeouts: uint("deadline_timeouts")?,
            errors: uint("errors")?,
            queue_depth: uint("queue_depth")?,
            inflight: uint("inflight")?,
            p50_service_us: uint("p50_service_us")?,
            p99_service_us: uint("p99_service_us")?,
            // Absent in pre-cluster snapshots; default 0 keeps old recordings
            // parseable while new servers always emit it.
            p999_service_us: v.get("p999_service_us").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

// ----------------------------------------------------------- diagnostics

/// Serializes a [`Diagnostic`] for error responses.
#[must_use]
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::obj(vec![
        (
            "severity",
            Json::Str(
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                }
                .into(),
            ),
        ),
        ("rule", Json::Str(d.rule.into())),
        ("core", Json::Uint(d.core as u64)),
        ("pc", Json::Uint(d.pc as u64)),
        ("message", Json::Str(d.message.clone())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec {
            benchmark: BenchRef::Suite(3),
            paradigm: WireParadigm::Paper,
            scale: WireScale::Quick,
            base: WireBase::Test,
            variant: WireVariant::Sla { enabled: false },
            fault: Some(FaultSpec {
                seed: 7,
                rate_ppm: 200,
            }),
        }
    }

    #[test]
    fn hytm_paradigm_name_round_trips() {
        assert_eq!(WireParadigm::Hytm.name(), "hytm");
        assert_eq!(
            WireParadigm::from_name("hytm").unwrap(),
            WireParadigm::Hytm
        );
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            sample(),
            JobSpec::new(
                BenchRef::SlaStress,
                WireParadigm::PsDswp,
                WireScale::Standard,
                WireBase::Paper,
            ),
            JobSpec {
                variant: WireVariant::ScalingFabric {
                    cores: 16,
                    directory: true,
                },
                ..JobSpec::new(
                    BenchRef::ScalingLoop,
                    WireParadigm::Doacross,
                    WireScale::Stress,
                    WireBase::Paper,
                )
            },
            JobSpec {
                variant: WireVariant::Victim(VictimPolicy::PlainLru),
                ..sample()
            },
            JobSpec {
                variant: WireVariant::QueueLatency(300),
                ..sample()
            },
            JobSpec {
                variant: WireVariant::VidBits(4),
                fault: None,
                ..sample()
            },
        ] {
            let back = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.canonical(), spec.canonical());
        }
    }

    #[test]
    fn canonicalization_ignores_client_key_order_and_defaults() {
        let shuffled = Json::parse(
            r#"{"paradigm":"paper","base":"test","scale":"quick","benchmark":"suite:1"}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&shuffled).unwrap();
        let explicit = Json::parse(
            r#"{"benchmark":"suite:1","paradigm":"paper","scale":"quick","base":"test",
                "variant":{"kind":"base"},"fault":null}"#,
        )
        .unwrap();
        let spec2 = JobSpec::from_json(&explicit).unwrap();
        assert_eq!(spec.canonical(), spec2.canonical());
        assert_eq!(spec.key(), spec2.key());
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = sample();
        let mut b = sample();
        b.fault = Some(FaultSpec {
            seed: 8,
            rate_ppm: 200,
        });
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().len(), 32);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let bad =
            Json::parse(r#"{"benchmark":"suite:0","paradigm":"seq","scale":"quick","base":"test","extra":1}"#)
                .unwrap();
        assert!(JobSpec::from_json(&bad).is_err());
        let bad_variant = Json::parse(
            r#"{"benchmark":"suite:0","paradigm":"seq","scale":"quick","base":"test",
                "variant":{"kind":"sla","enabled":true,"stray":1}}"#,
        )
        .unwrap();
        assert!(JobSpec::from_json(&bad_variant).is_err());
    }

    #[test]
    fn malformed_specs_error() {
        for bad in [
            r#"{"benchmark":"suite:x","paradigm":"seq","scale":"quick","base":"test"}"#,
            r#"{"benchmark":"suite:0","paradigm":"nope","scale":"quick","base":"test"}"#,
            r#"{"benchmark":"suite:0","paradigm":"seq","scale":"big","base":"test"}"#,
            r#"{"benchmark":"suite:0","paradigm":"seq","scale":"quick","base":"huge"}"#,
            r#"{"benchmark":"suite:0","paradigm":"seq","scale":"quick","base":"test","variant":{"kind":"vid-bits","bits":99}}"#,
            r#"{"benchmark":"suite:0","paradigm":"seq","scale":"quick","base":"test","fault":{"seed":1}}"#,
            r#"[1]"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn content_key_is_stable_and_sensitive() {
        let a = content_key(b"hello");
        assert_eq!(a, content_key(b"hello"));
        assert_ne!(a, content_key(b"hello!"));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let s = StatsSnapshot {
            requests: 10,
            job_requests: 8,
            mem_hits: 3,
            disk_hits: 1,
            coalesced_hits: 2,
            misses: 2,
            executed: 2,
            rejected_busy: 1,
            rejected_draining: 1,
            deadline_timeouts: 1,
            errors: 0,
            queue_depth: 4,
            inflight: 1,
            p50_service_us: 1000,
            p99_service_us: 9000,
            p999_service_us: 12_000,
        };
        let back = StatsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.cache_hits(), 6);
    }

    #[test]
    fn diagnostic_serializes() {
        let d = Diagnostic {
            severity: Severity::Error,
            rule: "mtx-halt-speculative",
            core: 2,
            pc: 14,
            message: "halt inside MTX".into(),
        };
        let j = diagnostic_to_json(&d);
        assert_eq!(j.get("rule").unwrap().as_str(), Some("mtx-halt-speculative"));
        assert_eq!(j.get("core").unwrap().as_u64(), Some(2));
    }
}
