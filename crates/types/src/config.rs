//! Architectural configuration, mirroring Table 2 of the paper.

use crate::error::ConfigError;

/// Cache line size in bytes (Table 2: 64 B).
pub const LINE_SIZE: usize = 64;

/// `log2(LINE_SIZE)`.
pub const LINE_SIZE_BITS: u32 = 6;

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use hmtx_types::CacheConfig;
/// let l1 = CacheConfig::paper_l1();
/// assert_eq!(l1.size_bytes, 64 * 1024);
/// assert_eq!(l1.num_sets(), 64 * 1024 / 64 / 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Set associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Table 2 L1: 64 KB, 8-way, 2-cycle.
    pub fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            latency: 2,
        }
    }

    /// Table 2 shared L2: 32 MB, 32-way, 40-cycle.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024 * 1024,
            ways: 32,
            latency: 40,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / LINE_SIZE / self.ways
    }

    /// Number of lines implied by the geometry.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / LINE_SIZE
    }

    /// Validates that the geometry is consistent (power-of-two sets, nonzero).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the size is not an exact multiple of
    /// `ways * LINE_SIZE` or the set count is not a power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 || self.size_bytes == 0 {
            return Err(ConfigError::new("cache size and ways must be nonzero"));
        }
        if !self.size_bytes.is_multiple_of(self.ways * LINE_SIZE) {
            return Err(ConfigError::new(
                "cache size must be a multiple of ways * line size",
            ));
        }
        if !self.num_sets().is_power_of_two() {
            return Err(ConfigError::new("cache set count must be a power of two"));
        }
        Ok(())
    }
}

/// Policy used by the last-level cache when choosing an eviction victim
/// among speculative lines (paper §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VictimPolicy {
    /// Prefer non-speculative lines, then overflow-safe `S-O(0,·)` lines,
    /// and only then lines whose eviction forces an abort (the paper's
    /// recommendation).
    #[default]
    PreferSafeOverflow,
    /// Plain LRU, ignoring speculative state (ablation D baseline).
    PlainLru,
}

/// How coherence requests reach other caches.
///
/// The paper's design is a snoopy bus (§4.1); its future work (§8)
/// proposes adapting the scheme to a directory protocol "to allow for
/// efficient scaling to many more cores". Both are implemented; the
/// protocol *state machine* is identical, only request routing and timing
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interconnect {
    /// A single shared snoopy bus: every miss broadcasts; requests
    /// serialize on bus occupancy.
    #[default]
    SnoopyBus,
    /// A banked directory at the L2: misses consult the line's home bank
    /// (point-to-point hops, no global broadcast), and only per-bank
    /// occupancy serializes. Scales with core count.
    Directory {
        /// Number of independent directory banks (power of two).
        banks: usize,
        /// Latency of one network hop in cycles.
        hop_latency: u64,
    },
}

/// A deliberately planted protocol defect, used to validate the correctness
/// tooling against a known-bad protocol: `hmtx-explore` must rediscover and
/// shrink the pinned PR 1 counterexample when one is enabled. Always `None`
/// in shipping configurations; only tests and the explorer's `--seed-bug`
/// flag ever set it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedBug {
    /// §4.3 speculative-read migration leaves a live replica of the version
    /// in the supplier's cache instead of demoting it to `S-S`, so two
    /// caches answer for the same `(modVID, highVID)` range.
    StaleMigrationReplica,
}

impl SeedBug {
    /// Stable CLI/corpus name of this defect.
    pub fn name(self) -> &'static str {
        match self {
            SeedBug::StaleMigrationReplica => "stale-migration-replica",
        }
    }

    /// Parses a CLI/corpus name produced by [`SeedBug::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "stale-migration-replica" => Some(SeedBug::StaleMigrationReplica),
            _ => None,
        }
    }
}

/// Configuration of the HMTX protocol extensions themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmtxConfig {
    /// Number of bits per cache-line VID field (`m` in §4.5; the paper uses 6).
    pub vid_bits: u32,
    /// Whether speculative load acknowledgments (§5.1) are enabled.
    /// Disabling them is ablation B: wrong-path loads then mark lines and
    /// cause false misspeculation.
    pub sla_enabled: bool,
    /// Whether commits are processed lazily (§5.3). The eager mode walks the
    /// whole cache at each commit and charges cycles per line scanned
    /// (ablation A baseline, modeling Vachharajani's scheme).
    pub lazy_commit: bool,
    /// Last-level-cache victim selection policy (§5.4).
    pub victim_policy: VictimPolicy,
    /// Bus cost in cycles of a commit/abort/VID-reset broadcast.
    pub commit_broadcast_latency: u64,
    /// Per-line cycle cost charged when the eager commit mode walks a cache.
    pub eager_commit_per_line_cost: u64,
    /// Cycle cost of sending one SLA to the cache system.
    pub sla_latency: u64,
    /// Cycle cost of a VID reset broadcast (pipeline refill after the stall).
    pub vid_reset_latency: u64,
    /// Deliberately planted protocol defect (correctness-tool validation
    /// only; see [`SeedBug`]). `None` in every real configuration.
    pub seed_bug: Option<SeedBug>,
}

impl HmtxConfig {
    /// The paper's configuration: 6-bit VIDs, SLAs on, lazy commit,
    /// overflow-aware victim selection.
    pub fn paper_default() -> Self {
        HmtxConfig {
            vid_bits: 6,
            sla_enabled: true,
            lazy_commit: true,
            victim_policy: VictimPolicy::PreferSafeOverflow,
            commit_broadcast_latency: 8,
            eager_commit_per_line_cost: 1,
            sla_latency: 2,
            vid_reset_latency: 64,
            seed_bug: None,
        }
    }

    /// Highest usable VID before a reset is required.
    pub fn max_vid(&self) -> crate::Vid {
        crate::Vid::max_for_bits(self.vid_bits)
    }
}

impl Default for HmtxConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the SMTX software baseline's cost model.
///
/// SMTX (Raman et al.) ships read/write log entries through software queues
/// to a commit process running on a dedicated core. Each logged access costs
/// instructions on the worker (to append the record) and on the commit
/// process (to validate it against committed state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtxConfig {
    /// Worker-side instructions to append one log record to a software queue.
    pub log_append_instrs: u64,
    /// Commit-process instructions to validate one read record.
    pub validate_read_instrs: u64,
    /// Commit-process instructions to apply one write record.
    pub apply_write_instrs: u64,
    /// Worker-side instructions to forward one uncommitted value to the next
    /// pipeline stage.
    pub forward_instrs: u64,
    /// Software queue chunk size in records (amortizes queue synchronization).
    pub queue_chunk: u64,
    /// Instructions per queue chunk synchronization (flush/poll).
    pub queue_sync_instrs: u64,
    /// Fixed software transaction-management instructions per iteration per
    /// process (version bookkeeping, TX begin/end, commit-process
    /// coordination).
    pub tx_mgmt_instrs: u64,
}

impl SmtxConfig {
    /// Cost model calibrated so that expert-minimized R/W sets give modest
    /// speedups and maximal sets give slowdowns on 4 cores (Figures 2 and 8).
    pub fn paper_default() -> Self {
        SmtxConfig {
            log_append_instrs: 6,
            validate_read_instrs: 10,
            apply_write_instrs: 8,
            forward_instrs: 8,
            queue_chunk: 32,
            queue_sync_instrs: 40,
            tx_mgmt_instrs: 90,
        }
    }
}

impl Default for SmtxConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Deterministic fault-injection configuration (chaos testing).
///
/// When attached to a [`MachineConfig`], the memory system, the machine, and
/// the runtime consult a seeded fault plan at well-defined points and inject
/// the paper's adversarial events on purpose: spurious conflict
/// misspeculations, forced VID overflow/reset pressure, cache capacity
/// squeezes, wrong-path load storms, and delayed queue operations. Every
/// decision is a pure function of `(seed, site, per-site counter)`, so a
/// given `(config, seed)` pair replays the exact same fault schedule on
/// every run and host.
///
/// # Examples
///
/// ```
/// use hmtx_types::{FaultConfig, MachineConfig};
/// let mut cfg = MachineConfig::test_default();
/// cfg.faults = Some(FaultConfig::chaos(42, 300));
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Probability, in parts per million, that an eligible injection point
    /// fires (applied independently per site).
    pub rate_ppm: u32,
    /// Inject spurious conflict misspeculations on speculative accesses.
    pub spurious_conflicts: bool,
    /// Force extra wrong-path load storms on retired branches (§5.1 stress).
    pub wrong_path_storms: bool,
    /// Add random extra latency to hardware queue operations.
    pub queue_delays: bool,
    /// Shrink the usable VID space so §4.6 overflow/reset traffic is forced.
    pub vid_squeeze: bool,
    /// Halve L1 ways/capacity so §5.4 overflow traffic is forced.
    pub cache_squeeze: bool,
    /// Run [`check_invariants`](../hmtx_core/struct.MemorySystem.html) after
    /// every injected fault and every recovery (slow; chaos tests only).
    pub check_invariants: bool,
}

impl FaultConfig {
    /// Everything enabled: the configuration the chaos suite runs.
    pub fn chaos(seed: u64, rate_ppm: u32) -> Self {
        FaultConfig {
            seed,
            rate_ppm,
            spurious_conflicts: true,
            wrong_path_storms: true,
            queue_delays: true,
            vid_squeeze: true,
            cache_squeeze: true,
            check_invariants: true,
        }
    }
}

/// Configuration of the hybrid-TM (`hytm`) execution mode.
///
/// HyTM bounds the HMTX fast path — per-transaction read/write-set line
/// caps on top of the architectural `vid_bits` limit — and demotes a
/// transaction that trips a bound (or storms with aborts) to an SMTX-style
/// instrumented software slow path. The bounds model a hardware TM whose
/// speculative tracking structures are smaller than the cache hierarchy,
/// the setting where Alistarh et al. show a software fallback is mandatory
/// for progress.
///
/// `enabled == false` (the default) makes every field inert, so existing
/// HMTX configurations and their cycle counts are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HytmConfig {
    /// Master switch. When `false`, the memory system never checks the
    /// set bounds and the runtime never demotes.
    pub enabled: bool,
    /// Maximum distinct cache lines a transaction may speculatively read
    /// before the access answers with `SpecOverflow` (`0` = unbounded).
    pub max_read_lines: u32,
    /// Maximum distinct cache lines a transaction may speculatively write
    /// before the access answers with `SpecOverflow` (`0` = unbounded).
    pub max_write_lines: u32,
    /// Demote a transaction to the software slow path after this many
    /// consecutive aborts at the same transaction (the `K` of the demotion
    /// ladder). Capacity and VID-exhaustion aborts demote immediately.
    pub demote_after_aborts: u64,
    /// Base of the seeded exponential backoff charged (in stall cycles)
    /// before re-dispatching after a conflict abort.
    pub backoff_base_cycles: u64,
    /// Cap on one backoff stall (the exponential is clamped here).
    pub backoff_cap_cycles: u64,
    /// Seed of the deterministic backoff jitter stream.
    pub backoff_seed: u64,
    /// After this many consecutive demotions across *different*
    /// transactions, the storm breaker serializes a whole group on the
    /// slow path instead of demoting one transaction at a time.
    pub storm_threshold: u64,
    /// Number of consecutive transactions the storm breaker serializes on
    /// the slow path in one slab.
    pub storm_group: u64,
    /// VID-exhaustion watchdog: number of VID-space spin iterations the
    /// begin guard tolerates before aborting with the exhaustion sentinel
    /// (`0` disables the watchdog and the guard spins forever, the plain
    /// HMTX behaviour).
    pub watchdog_spins: u64,
}

impl HytmConfig {
    /// HyTM disabled: plain HMTX behaviour, all bounds inert.
    pub fn disabled() -> Self {
        HytmConfig {
            enabled: false,
            max_read_lines: 0,
            max_write_lines: 0,
            demote_after_aborts: 4,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 4096,
            backoff_seed: 0x4859_544D_5F42_4F46, // "HYTM_BOF"
            storm_threshold: 4,
            storm_group: 8,
            watchdog_spins: 10_000,
        }
    }

    /// The bounded fast path the `hytm` paradigm runs: finite read/write
    /// sets sized well above the common case but small enough that capacity
    /// squeezes and pathological workloads trip them.
    pub fn paper_default() -> Self {
        HytmConfig {
            enabled: true,
            max_read_lines: 64,
            max_write_lines: 32,
            ..Self::disabled()
        }
    }

    /// Validates the knobs that interact (§11 of DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if enabled with a zero demotion threshold,
    /// a zero storm group, or a backoff cap below the base.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.enabled {
            return Ok(());
        }
        if self.demote_after_aborts == 0 {
            return Err(ConfigError::new("hytm demote_after_aborts must be nonzero"));
        }
        if self.storm_threshold == 0 || self.storm_group == 0 {
            return Err(ConfigError::new(
                "hytm storm threshold and group must be nonzero",
            ));
        }
        if self.backoff_cap_cycles < self.backoff_base_cycles {
            return Err(ConfigError::new(
                "hytm backoff cap must be >= backoff base",
            ));
        }
        Ok(())
    }
}

impl Default for HytmConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Full machine configuration (Table 2 plus simulator knobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (Table 2 evaluates 4).
    pub num_cores: usize,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 (last-level) cache.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (Table 2: 200).
    pub mem_latency: u64,
    /// Bus occupancy per transaction in cycles (serializes coherent requests
    /// on the snoopy bus, or per directory bank).
    pub bus_occupancy: u64,
    /// Coherence request routing (snoopy bus or banked directory, §8).
    pub interconnect: Interconnect,
    /// When `true`, speculative lines evicted past the LLC spill into a
    /// memory-side overflow table instead of aborting (the paper's §8
    /// "unlimited read and write sets" extension). Overflow-table hits pay
    /// full memory latency plus a lookup penalty.
    pub unbounded_sets: bool,
    /// Branch misprediction penalty in cycles (pipeline flush/refill).
    pub mispredict_penalty: u64,
    /// Maximum wrong-path instructions interpreted after a misprediction
    /// (models the OoO window issuing squashed loads, §5.1).
    pub wrong_path_depth: usize,
    /// Capacity of each hardware produce/consume queue in entries.
    pub queue_capacity: usize,
    /// Latency in cycles for a produced value to become consumable.
    pub queue_latency: u64,
    /// Maximum in-flight (begun but uncommitted) transactions the runtime
    /// allows. Bounds how many live versions of a hot line (e.g. the DSWP
    /// `producedNode` slot) can pile up in one cache set; must fit within
    /// the combined associativity of the hierarchy or transactions overflow
    /// the caches and abort (§5.4).
    pub pipeline_window: u64,
    /// Timer interrupt period in cycles per core; `0` disables interrupts.
    pub interrupt_period: u64,
    /// Instructions executed by the non-speculative OS interrupt handler.
    pub interrupt_handler_instrs: u64,
    /// HMTX protocol extension configuration.
    pub hmtx: HmtxConfig,
    /// SMTX baseline cost model.
    pub smtx: SmtxConfig,
    /// Hybrid-TM fast-path bounds and fallback policy (inert unless
    /// `hytm.enabled`; see [`HytmConfig`]).
    pub hytm: HytmConfig,
    /// Deterministic fault injection (`None` = no faults, the default).
    pub faults: Option<FaultConfig>,
    /// Safety valve: a run that recovers this many times without completing
    /// is reported as [`SimError::Livelock`](crate::SimError).
    pub max_recoveries: u64,
    /// Recovery-ladder rung 1 budget: how many times the runtime re-dispatches
    /// the paradigm in parallel from the same stuck transaction before
    /// serializing it (rung 2) and, if that also misspeculates, falling back
    /// to fully non-speculative sequential execution (rung 3).
    pub recovery_parallel_retries: u64,
}

impl MachineConfig {
    /// Table 2's configuration: 4 cores, 64 KB L1, 32 MB shared L2,
    /// 200-cycle memory, 6-bit VIDs.
    pub fn paper_default() -> Self {
        MachineConfig {
            num_cores: 4,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            mem_latency: 200,
            bus_occupancy: 4,
            interconnect: Interconnect::SnoopyBus,
            unbounded_sets: false,
            mispredict_penalty: 14,
            wrong_path_depth: 12,
            queue_capacity: 64,
            queue_latency: 30,
            pipeline_window: 16,
            interrupt_period: 0,
            interrupt_handler_instrs: 200,
            hmtx: HmtxConfig::paper_default(),
            smtx: SmtxConfig::paper_default(),
            hytm: HytmConfig::disabled(),
            faults: None,
            max_recoveries: 1_000,
            recovery_parallel_retries: 1,
        }
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// smaller caches, same protocol behaviour.
    pub fn test_default() -> Self {
        let mut cfg = Self::paper_default();
        cfg.l1 = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 4,
            latency: 2,
        };
        cfg.l2 = CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            latency: 40,
        };
        // 4 + 8 ways must hold every live version of a hot line.
        cfg.pipeline_window = 8;
        cfg
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any cache geometry is invalid, the core
    /// count is zero, or the VID width is out of the supported 2..=12 range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::new("machine must have at least one core"));
        }
        self.l1.validate()?;
        self.l2.validate()?;
        if !(2..=12).contains(&self.hmtx.vid_bits) {
            return Err(ConfigError::new("vid_bits must be in 2..=12"));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("queue capacity must be nonzero"));
        }
        if self.max_recoveries == 0 {
            return Err(ConfigError::new("max_recoveries must be nonzero"));
        }
        if let Some(f) = &self.faults {
            if f.rate_ppm > 1_000_000 {
                return Err(ConfigError::new("fault rate_ppm must be <= 1,000,000"));
            }
        }
        self.hytm.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let l1 = CacheConfig::paper_l1();
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.num_lines(), 1024);
        l1.validate().unwrap();
    }

    #[test]
    fn paper_l2_geometry() {
        let l2 = CacheConfig::paper_l2();
        assert_eq!(l2.num_sets(), 16 * 1024);
        assert_eq!(l2.num_lines(), 512 * 1024);
        l2.validate().unwrap();
    }

    #[test]
    fn invalid_geometries_rejected() {
        let bad = CacheConfig {
            size_bytes: 100,
            ways: 3,
            latency: 1,
        };
        assert!(bad.validate().is_err());
        let zero = CacheConfig {
            size_bytes: 0,
            ways: 0,
            latency: 1,
        };
        assert!(zero.validate().is_err());
        // 3 sets: not a power of two.
        let non_pow2 = CacheConfig {
            size_bytes: 3 * 64 * 2,
            ways: 2,
            latency: 1,
        };
        assert!(non_pow2.validate().is_err());
    }

    #[test]
    fn paper_machine_validates() {
        MachineConfig::paper_default().validate().unwrap();
        MachineConfig::test_default().validate().unwrap();
    }

    #[test]
    fn vid_bits_bounds_enforced() {
        let mut cfg = MachineConfig::test_default();
        cfg.hmtx.vid_bits = 1;
        assert!(cfg.validate().is_err());
        cfg.hmtx.vid_bits = 13;
        assert!(cfg.validate().is_err());
        cfg.hmtx.vid_bits = 6;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn max_vid_tracks_width() {
        let mut h = HmtxConfig::paper_default();
        assert_eq!(h.max_vid().0, 63);
        h.vid_bits = 4;
        assert_eq!(h.max_vid().0, 15);
    }

    #[test]
    fn fault_rate_bounds_enforced() {
        let mut cfg = MachineConfig::test_default();
        cfg.faults = Some(FaultConfig::chaos(1, 1_000_001));
        assert!(cfg.validate().is_err());
        cfg.faults = Some(FaultConfig::chaos(1, 1_000_000));
        assert!(cfg.validate().is_ok());
        cfg.max_recoveries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn chaos_config_enables_every_fault_class() {
        let f = FaultConfig::chaos(7, 250);
        assert_eq!((f.seed, f.rate_ppm), (7, 250));
        assert!(
            f.spurious_conflicts
                && f.wrong_path_storms
                && f.queue_delays
                && f.vid_squeeze
                && f.cache_squeeze
                && f.check_invariants
        );
    }

    #[test]
    fn hytm_disabled_is_inert_and_default() {
        let cfg = MachineConfig::paper_default();
        assert!(!cfg.hytm.enabled);
        assert_eq!(cfg.hytm, HytmConfig::default());
        // Nonsense knobs are fine while disabled.
        let mut h = HytmConfig::disabled();
        h.demote_after_aborts = 0;
        h.storm_group = 0;
        h.backoff_cap_cycles = 0;
        h.validate().unwrap();
    }

    #[test]
    fn hytm_enabled_knobs_validated() {
        let mut cfg = MachineConfig::test_default();
        cfg.hytm = HytmConfig::paper_default();
        cfg.validate().unwrap();
        cfg.hytm.demote_after_aborts = 0;
        assert!(cfg.validate().is_err());
        cfg.hytm.demote_after_aborts = 4;
        cfg.hytm.storm_group = 0;
        assert!(cfg.validate().is_err());
        cfg.hytm.storm_group = 8;
        cfg.hytm.backoff_cap_cycles = cfg.hytm.backoff_base_cycles - 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn hytm_paper_default_bounds_finite() {
        let h = HytmConfig::paper_default();
        assert!(h.enabled);
        assert!(h.max_read_lines > 0 && h.max_write_lines > 0);
        assert!(h.watchdog_spins > 0);
        h.validate().unwrap();
    }

    #[test]
    fn zero_cores_rejected() {
        let mut cfg = MachineConfig::test_default();
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());
    }
}
