//! Identifier newtypes: version IDs, addresses, core/thread/queue handles.

use std::fmt;

use crate::config::{LINE_SIZE, LINE_SIZE_BITS};

/// The reserved VID value software passes to `abortMTX` to signal that a
/// worker exhausted the configured VID space while waiting for a slot (the
/// hytm vid-watchdog idiom, §4.6 interplay). The value is outside every
/// legal `vid_bits` width (max 12 bits), so it can never collide with a
/// real transaction VID.
pub const VID_EXHAUSTION_SENTINEL: u16 = 0x7FFF;

/// A transaction *version ID*.
///
/// Every multithreaded transaction is assigned a VID corresponding to the
/// original sequential program order (paper §3). VID `0` is reserved for
/// non-speculative execution. VIDs are physically limited to
/// [`HmtxConfig::vid_bits`](crate::HmtxConfig::vid_bits) bits in hardware;
/// this type stores the full value and lets the protocol layer enforce the
/// width.
///
/// # Examples
///
/// ```
/// use hmtx_types::Vid;
/// let v = Vid(3);
/// assert!(v.is_speculative());
/// assert_eq!(v.next(), Vid(4));
/// assert!(Vid::NON_SPECULATIVE < v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vid(pub u16);

impl Vid {
    /// The reserved VID for non-speculative execution.
    pub const NON_SPECULATIVE: Vid = Vid(0);

    /// Returns `true` if this is the reserved non-speculative VID (zero).
    #[inline]
    pub fn is_non_speculative(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this VID labels speculative (transactional) work.
    #[inline]
    pub fn is_speculative(self) -> bool {
        self.0 != 0
    }

    /// The consecutive successor VID (original-program-order successor).
    #[inline]
    pub fn next(self) -> Vid {
        Vid(self.0 + 1)
    }

    /// The largest VID representable with `bits` bits (e.g. 63 for the
    /// paper's 6-bit configuration).
    #[inline]
    pub fn max_for_bits(bits: u32) -> Vid {
        Vid(((1u32 << bits) - 1) as u16)
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u16> for Vid {
    fn from(raw: u16) -> Self {
        Vid(raw)
    }
}

/// A byte address in the simulated guest physical address space.
///
/// # Examples
///
/// ```
/// use hmtx_types::{Addr, LineAddr};
/// let a = Addr(0x1040);
/// assert_eq!(a.line(), LineAddr(0x41));
/// assert_eq!(a.line_offset(), 0);
/// assert_eq!(a.offset(8).0, 0x1048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SIZE_BITS)
    }

    /// Byte offset of this address inside its cache line.
    #[inline]
    pub fn line_offset(self) -> usize {
        (self.0 & (LINE_SIZE as u64 - 1)) as usize
    }

    /// This address displaced by `delta` bytes (wrapping on overflow).
    #[inline]
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }

    /// Returns `true` if an aligned 8-byte word at this address stays inside
    /// one cache line (the simulator only issues word accesses that do).
    #[inline]
    pub fn word_in_line(self) -> bool {
        self.line_offset() + 8 <= LINE_SIZE
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line address (byte address divided by the 64 B line size).
///
/// # Examples
///
/// ```
/// use hmtx_types::{Addr, LineAddr};
/// let l = LineAddr(2);
/// assert_eq!(l.base(), Addr(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SIZE_BITS)
    }

    /// The cache set index for a cache with `num_sets` sets (a power of two).
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        (self.0 as usize) & (num_sets - 1)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

/// Index of a processor core in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Index of a software thread (threads may migrate between cores, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a hardware produce/consume queue connecting pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueueId(pub usize);

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A simulated clock cycle count.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_ordering_matches_program_order() {
        assert!(Vid(1) < Vid(2));
        assert_eq!(Vid(5).next(), Vid(6));
        assert!(Vid::NON_SPECULATIVE.is_non_speculative());
        assert!(!Vid::NON_SPECULATIVE.is_speculative());
        assert!(Vid(1).is_speculative());
    }

    #[test]
    fn vid_max_for_bits() {
        assert_eq!(Vid::max_for_bits(6), Vid(63));
        assert_eq!(Vid::max_for_bits(3), Vid(7));
        assert_eq!(Vid::max_for_bits(8), Vid(255));
    }

    #[test]
    fn addr_line_decomposition() {
        let a = Addr(0x1040);
        assert_eq!(a.line(), LineAddr(0x41));
        assert_eq!(a.line_offset(), 0);
        assert_eq!(Addr(0x107f).line(), LineAddr(0x41));
        assert_eq!(Addr(0x107f).line_offset(), 0x3f);
    }

    #[test]
    fn line_base_round_trips() {
        let l = LineAddr(123);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().line_offset(), 0);
    }

    #[test]
    fn set_index_masks_low_bits() {
        assert_eq!(LineAddr(0x41).set_index(16), 0x1);
        assert_eq!(LineAddr(0xff).set_index(16), 0xf);
        assert_eq!(LineAddr(0xff).set_index(1), 0);
    }

    #[test]
    fn word_in_line_boundary() {
        assert!(Addr(0).word_in_line());
        assert!(Addr(56).word_in_line());
        assert!(!Addr(57).word_in_line());
        assert!(!Addr(63).word_in_line());
        assert!(Addr(64).word_in_line());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Vid(7).to_string(), "v7");
        assert_eq!(Addr(16).to_string(), "0x10");
        assert_eq!(LineAddr(16).to_string(), "L0x10");
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(ThreadId(1).to_string(), "t1");
        assert_eq!(QueueId(0).to_string(), "q0");
    }

    #[test]
    fn addr_offset_signed() {
        assert_eq!(Addr(100).offset(-4), Addr(96));
        assert_eq!(Addr(100).offset(28), Addr(128));
    }
}
