//! McPAT-lite: an analytical area/leakage/dynamic-energy model for Table 3.
//!
//! The paper models the 4-core machine with McPAT/CACTI at 22 nm and
//! reports (Table 3):
//!
//! * commodity baseline: 107.1 mm², 5.515 W leakage;
//! * with HMTX extensions: 111.1 mm² (+4.0 mm² for the two 6-bit VIDs on
//!   every cache line plus the low/high cascaded comparators of §4.5),
//!   5.607 W leakage;
//! * runtime dynamic power ~3.6 W for one active core (sequential), ~14 W
//!   for four; HMTX's total *energy* beats SMTX because it finishes sooner.
//!
//! This crate reproduces those relations with an explicit analytical model:
//! SRAM area per bit, logic area per core, leakage per mm² (with a power
//! gating factor for the rarely-switching HMTX metadata), and per-event
//! dynamic energies driven by the simulator's actual event counts —
//! including the §4.5 split between short (low-bit) and cascaded (full)
//! VID comparisons.
//!
//! # Examples
//!
//! ```
//! use hmtx_power::PowerModel;
//! use hmtx_types::MachineConfig;
//!
//! let cfg = MachineConfig::paper_default();
//! let commodity = PowerModel::commodity(&cfg);
//! let hmtx = PowerModel::with_hmtx(&cfg);
//! assert!((commodity.area_mm2() - 107.1).abs() < 0.2);
//! assert!((hmtx.area_mm2() - commodity.area_mm2() - 4.0).abs() < 0.6);
//! assert!(hmtx.leakage_w() > commodity.leakage_w());
//! ```

#![warn(missing_docs)]

use hmtx_machine::Machine;
use hmtx_types::MachineConfig;

/// Clock frequency (Table 2: 2.0 GHz).
pub const CLOCK_HZ: f64 = 2.0e9;

// ---- area constants (22 nm, calibrated to Table 3's 107.1 mm² base) ----

/// Logic + private structures per core, mm².
const CORE_AREA_MM2: f64 = 10.0;
/// SRAM density, mm² per MiB (CACTI-like 22 nm figure).
const SRAM_MM2_PER_MIB: f64 = 1.9;
/// Interconnect, IO and uncore fixed area, mm².
const UNCORE_AREA_MM2: f64 = 5.86;
/// Extra comparator/control area per cache for the §4.5 cascaded VID
/// comparators, mm².
const VID_COMPARATOR_AREA_MM2: f64 = 0.17;
/// Tag-array packing factor for the HMTX metadata bits (tag SRAM with
/// per-way comparator wiring is less dense than data SRAM).
const METADATA_AREA_FACTOR: f64 = 2.2;

// ---- leakage ----

/// Leakage per mm² (calibrated to 5.515 W / 107.1 mm²).
const LEAKAGE_W_PER_MM2: f64 = 5.515 / 107.1;
/// Power-gating factor applied to the HMTX metadata additions (the paper
/// applies McPAT power gating; the VID bits switch rarely).
const HMTX_LEAKAGE_GATING: f64 = 0.45;

// ---- dynamic energy per event (nJ) ----

const ENERGY_INSTR_NJ: f64 = 1.45;
const ENERGY_WRONG_PATH_INSTR_NJ: f64 = 0.9;
const ENERGY_L1_ACCESS_NJ: f64 = 0.18;
const ENERGY_L2_ACCESS_NJ: f64 = 2.4;
const ENERGY_MEM_ACCESS_NJ: f64 = 18.0;
const ENERGY_BUS_TXN_NJ: f64 = 1.1;
/// Extra tag energy per L1 access on HMTX hardware (the 12 wider tag bits
/// are read even by code that never uses HMTX — the paper's "applications
/// running on hardware with HMTX extensions still see a marginal increase").
const ENERGY_HMTX_TAG_OVERHEAD_NJ: f64 = 0.012;
const ENERGY_SHORT_VID_CMP_NJ: f64 = 0.004;
const ENERGY_CASCADED_VID_CMP_NJ: f64 = 0.012;
const ENERGY_SLA_NJ: f64 = 0.05;
const ENERGY_COMMIT_BROADCAST_NJ: f64 = 4.0;

/// HMTX metadata bits added per cache line (two 6-bit VIDs, §6.4).
const HMTX_BITS_PER_LINE: f64 = 12.0;

/// Dynamic-energy breakdown by component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Core pipelines (instruction execution, right and wrong path).
    pub cores_j: f64,
    /// L1 data arrays.
    pub l1_j: f64,
    /// L2 / peer transfers.
    pub l2_j: f64,
    /// Main memory.
    pub memory_j: f64,
    /// Coherence fabric (bus transactions, commit broadcasts).
    pub fabric_j: f64,
    /// HMTX extensions (VID tags, comparators, SLAs); zero on commodity
    /// hardware.
    pub hmtx_j: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy.
    pub fn total_j(&self) -> f64 {
        self.cores_j + self.l1_j + self.l2_j + self.memory_j + self.fabric_j + self.hmtx_j
    }
}

/// Area/power/energy evaluation of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Die area in mm².
    pub area_mm2: f64,
    /// Total leakage in W.
    pub leakage_w: f64,
    /// Runtime dynamic power in W (dynamic energy / runtime).
    pub dynamic_w: f64,
    /// Total energy in J (leakage + dynamic over the runtime).
    pub energy_j: f64,
    /// Runtime in seconds at the modeled clock.
    pub runtime_s: f64,
    /// Where the dynamic energy went.
    pub breakdown: EnergyBreakdown,
}

/// The analytical hardware model: a machine configuration with or without
/// the HMTX extensions.
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: MachineConfig,
    hmtx_hardware: bool,
}

impl PowerModel {
    /// Commodity hardware (no HMTX extensions) — the SMTX/sequential
    /// baseline platform.
    pub fn commodity(cfg: &MachineConfig) -> Self {
        PowerModel {
            cfg: cfg.clone(),
            hmtx_hardware: false,
        }
    }

    /// Hardware with the HMTX extensions of §6.4.
    pub fn with_hmtx(cfg: &MachineConfig) -> Self {
        PowerModel {
            cfg: cfg.clone(),
            hmtx_hardware: true,
        }
    }

    /// Whether this model includes the HMTX extensions.
    pub fn is_hmtx(&self) -> bool {
        self.hmtx_hardware
    }

    fn cache_mib(&self) -> f64 {
        let l1_bytes = self.cfg.l1.size_bytes * self.cfg.num_cores;
        let l2_bytes = self.cfg.l2.size_bytes;
        (l1_bytes + l2_bytes) as f64 / (1024.0 * 1024.0)
    }

    fn total_lines(&self) -> f64 {
        (self.cfg.l1.num_lines() * self.cfg.num_cores + self.cfg.l2.num_lines()) as f64
    }

    /// HMTX metadata SRAM in MiB (two VIDs per line; CB/AB bits and the
    /// per-cache LC VID registers are negligible next to them).
    fn hmtx_metadata_mib(&self) -> f64 {
        self.total_lines() * HMTX_BITS_PER_LINE / 8.0 / (1024.0 * 1024.0)
    }

    /// Die area in mm².
    pub fn area_mm2(&self) -> f64 {
        let base = CORE_AREA_MM2 * self.cfg.num_cores as f64
            + SRAM_MM2_PER_MIB * self.cache_mib()
            + UNCORE_AREA_MM2;
        if self.hmtx_hardware {
            let metadata = self.hmtx_metadata_mib() * SRAM_MM2_PER_MIB * METADATA_AREA_FACTOR;
            let comparators = VID_COMPARATOR_AREA_MM2 * (self.cfg.num_cores as f64 + 1.0);
            base + metadata + comparators
        } else {
            base
        }
    }

    /// Total leakage in W.
    pub fn leakage_w(&self) -> f64 {
        let base_area = PowerModel::commodity(&self.cfg).area_mm2();
        let mut leak = base_area * LEAKAGE_W_PER_MM2;
        if self.hmtx_hardware {
            let extra = self.area_mm2() - base_area;
            leak += extra * LEAKAGE_W_PER_MM2 * HMTX_LEAKAGE_GATING;
        }
        leak
    }

    /// Evaluates a finished simulation run on this hardware.
    pub fn evaluate(&self, machine: &Machine) -> PowerReport {
        let ms = machine.stats();
        let mem = machine.mem().stats();
        let cycles = machine.cycles().max(1);
        let runtime_s = cycles as f64 / CLOCK_HZ;

        let mut breakdown = EnergyBreakdown {
            cores_j: (ms.instructions as f64 * ENERGY_INSTR_NJ
                + ms.wrong_path_instructions as f64 * ENERGY_WRONG_PATH_INSTR_NJ)
                * 1e-9,
            l1_j: (mem.l1_hits + mem.l1_misses + mem.wrong_path_loads) as f64
                * ENERGY_L1_ACCESS_NJ
                * 1e-9,
            l2_j: (mem.l2_hits + mem.peer_transfers) as f64 * ENERGY_L2_ACCESS_NJ * 1e-9,
            memory_j: mem.mem_fills as f64 * ENERGY_MEM_ACCESS_NJ * 1e-9,
            fabric_j: ((mem.l1_misses + mem.upgrades) as f64 * ENERGY_BUS_TXN_NJ
                + (mem.commits + mem.aborts + mem.vid_resets) as f64 * ENERGY_COMMIT_BROADCAST_NJ)
                * 1e-9,
            hmtx_j: 0.0,
        };
        if self.hmtx_hardware {
            breakdown.hmtx_j = ((mem.l1_hits + mem.l1_misses) as f64 * ENERGY_HMTX_TAG_OVERHEAD_NJ
                + mem.short_vid_compares as f64 * ENERGY_SHORT_VID_CMP_NJ
                + mem.cascaded_vid_compares as f64 * ENERGY_CASCADED_VID_CMP_NJ
                + mem.slas_sent as f64 * ENERGY_SLA_NJ)
                * 1e-9;
        }
        let dynamic_j = breakdown.total_j();
        let dynamic_w = dynamic_j / runtime_s;
        let leakage_w = self.leakage_w();
        PowerReport {
            area_mm2: self.area_mm2(),
            leakage_w,
            dynamic_w,
            energy_j: dynamic_j + leakage_w * runtime_s,
            runtime_s,
            breakdown,
        }
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Examples
///
/// ```
/// assert!((hmtx_power::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::MachineConfig;

    #[test]
    fn base_area_matches_table3() {
        let m = PowerModel::commodity(&MachineConfig::paper_default());
        assert!((m.area_mm2() - 107.1).abs() < 0.2, "got {}", m.area_mm2());
    }

    #[test]
    fn hmtx_area_overhead_is_about_4mm2() {
        let cfg = MachineConfig::paper_default();
        let delta = PowerModel::with_hmtx(&cfg).area_mm2() - PowerModel::commodity(&cfg).area_mm2();
        assert!((delta - 4.0).abs() < 0.6, "got {delta}");
    }

    #[test]
    fn leakage_matches_table3_shape() {
        let cfg = MachineConfig::paper_default();
        let base = PowerModel::commodity(&cfg).leakage_w();
        let ext = PowerModel::with_hmtx(&cfg).leakage_w();
        assert!((base - 5.515).abs() < 0.05, "got {base}");
        assert!(ext > base);
        assert!((ext - 5.607).abs() < 0.09, "got {ext}");
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        use hmtx_isa::{Cond, ProgramBuilder, Reg};
        use hmtx_machine::{Machine, ThreadContext};
        use hmtx_types::ThreadId;
        use std::sync::Arc;

        let cfg = MachineConfig::test_default();
        let busy = |cores: usize| {
            let mut m = Machine::new(cfg.clone());
            for c in 0..cores {
                let mut b = ProgramBuilder::new();
                let head = b.new_label();
                b.li(Reg::R1, 0);
                b.li(Reg::R2, 0x100000 + c as i64 * 0x1000);
                b.bind(head).unwrap();
                b.store(Reg::R1, Reg::R2, 0);
                b.addi(Reg::R1, Reg::R1, 1);
                b.branch_imm(Cond::Lt, Reg::R1, 2000, head);
                b.halt();
                m.load_thread(
                    c,
                    ThreadContext::new(ThreadId(c), Arc::new(b.build().unwrap())),
                );
            }
            m.run(1_000_000).unwrap();
            PowerModel::commodity(&cfg).evaluate(&m).dynamic_w
        };
        let one = busy(1);
        let four = busy(4);
        assert!(
            four > one * 2.5,
            "4 busy cores must burn much more: {one} vs {four}"
        );
    }

    #[test]
    fn hmtx_hardware_adds_marginal_dynamic_power() {
        use hmtx_runtime::{run_loop, Paradigm};
        use hmtx_workloads::{suite, Scale};

        let cfg = MachineConfig::test_default();
        let w = &suite(Scale::Quick)[7]; // ispell: fast
        let (machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, 50_000_000).unwrap();
        let commodity = PowerModel::commodity(&cfg).evaluate(&machine);
        let hmtx = PowerModel::with_hmtx(&cfg).evaluate(&machine);
        assert!(hmtx.dynamic_w > commodity.dynamic_w);
        assert!(
            hmtx.dynamic_w < commodity.dynamic_w * 1.1,
            "overhead must be marginal: {} vs {}",
            commodity.dynamic_w,
            hmtx.dynamic_w
        );
    }

    #[test]
    fn energy_combines_leakage_and_dynamic() {
        use hmtx_runtime::{run_loop, Paradigm};
        use hmtx_workloads::{suite, Scale};

        let cfg = MachineConfig::test_default();
        let w = &suite(Scale::Quick)[7];
        let (machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, 50_000_000).unwrap();
        let r = PowerModel::with_hmtx(&cfg).evaluate(&machine);
        let recomputed = r.dynamic_w * r.runtime_s + r.leakage_w * r.runtime_s;
        assert!((r.energy_j - recomputed).abs() / r.energy_j < 1e-9);
        assert!(r.runtime_s > 0.0);
    }

    #[test]
    fn breakdown_sums_to_dynamic_energy() {
        use hmtx_runtime::run_loop;
        use hmtx_workloads::{suite, Scale};
        let cfg = MachineConfig::test_default();
        let w = &suite(Scale::Quick)[7];
        let (machine, _) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, 50_000_000).unwrap();
        let r = PowerModel::with_hmtx(&cfg).evaluate(&machine);
        let sum = r.breakdown.total_j();
        assert!((sum - r.dynamic_w * r.runtime_s).abs() / sum < 1e-9);
        assert!(
            r.breakdown.hmtx_j > 0.0,
            "HMTX hardware must show extension energy"
        );
        assert!(r.breakdown.cores_j > 0.0);
        let commodity = PowerModel::commodity(&cfg).evaluate(&machine);
        assert_eq!(commodity.breakdown.hmtx_j, 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
